package schema

import (
	"strings"
	"testing"

	"wmxml/internal/xmltree"
)

// db1Schema builds the schema of the paper's figure-1 db1.xml.
func db1Schema() *Schema {
	s := New("db1", "db")
	db := s.Declare("db")
	db.Children = []ChildDecl{{Name: "book", MinOccurs: 0, MaxOccurs: Unbounded}}
	book := s.Declare("book")
	book.Attrs = []AttrDecl{{Name: "publisher", Required: true, Type: TypeString}}
	book.Children = []ChildDecl{
		{Name: "title", MinOccurs: 1, MaxOccurs: 1},
		{Name: "author", MinOccurs: 0, MaxOccurs: Unbounded},
		{Name: "writer", MinOccurs: 0, MaxOccurs: Unbounded},
		{Name: "editor", MinOccurs: 0, MaxOccurs: 1},
		{Name: "year", MinOccurs: 1, MaxOccurs: 1},
	}
	s.Declare("title").Type = TypeString
	s.Declare("author").Type = TypeString
	s.Declare("writer").Type = TypeString
	s.Declare("editor").Type = TypeString
	s.Declare("year").Type = TypeInteger
	return s
}

const validDB1 = `<db>
  <book publisher="mkp">
    <title>Readings in Database Systems</title>
    <author>Stonebraker</author>
    <author>Hellerstein</author>
    <editor>Harrypotter</editor>
    <year>1998</year>
  </book>
  <book publisher="acm">
    <title>Database Design</title>
    <writer>Berstein</writer>
    <editor>Gamer</editor>
    <year>1998</year>
  </book>
</db>`

func TestValidateOK(t *testing.T) {
	s := db1Schema()
	doc := xmltree.MustParseString(validDB1)
	if v := s.Validate(doc); len(v) != 0 {
		t.Errorf("valid document rejected: %v", v)
	}
}

func TestValidateViolations(t *testing.T) {
	s := db1Schema()
	cases := []struct {
		name   string
		src    string
		reason string
	}{
		{"wrong-root", `<library/>`, "root element"},
		{"undeclared-element", `<db><magazine/></db>`, "not allowed"},
		{"missing-required-attr", `<db><book><title>T</title><year>1999</year></book></db>`, "missing required attribute"},
		{"undeclared-attr", `<db><book publisher="x" isbn="1"><title>T</title><year>1999</year></book></db>`, "undeclared attribute"},
		{"missing-title", `<db><book publisher="x"><year>1999</year></book></db>`, "at least 1"},
		{"two-titles", `<db><book publisher="x"><title>A</title><title>B</title><year>1999</year></book></db>`, "at most 1"},
		{"bad-year", `<db><book publisher="x"><title>T</title><year>next</year></book></db>`, "not a valid integer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := xmltree.MustParseString(tc.src)
			vs := s.Validate(doc)
			if len(vs) == 0 {
				t.Fatalf("invalid document accepted")
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.Reason, tc.reason) {
					found = true
				}
			}
			if !found {
				t.Errorf("no violation mentioning %q in %v", tc.reason, vs)
			}
		})
	}
}

func TestDataTypes(t *testing.T) {
	cases := []struct {
		t     DataType
		value string
		ok    bool
	}{
		{TypeInteger, "1998", true},
		{TypeInteger, " 42 ", true},
		{TypeInteger, "3.14", false},
		{TypeInteger, "abc", false},
		{TypeDecimal, "3.14", true},
		{TypeDecimal, "-0.5", true},
		{TypeDecimal, "1e3", true},
		{TypeDecimal, "pi", false},
		{TypeImage, "aGVsbG8gd29ybGQh", true},
		{TypeImage, "not base64!!!", false},
		{TypeString, "anything", true},
	}
	for _, tc := range cases {
		if got := tc.t.ValidValue(tc.value); got != tc.ok {
			t.Errorf("%v.ValidValue(%q) = %v, want %v", tc.t, tc.value, got, tc.ok)
		}
	}
}

func TestParseDataType(t *testing.T) {
	for _, name := range []string{"string", "integer", "decimal", "image", "none"} {
		dt, err := ParseDataType(name)
		if err != nil {
			t.Errorf("ParseDataType(%q): %v", name, err)
		}
		if dt.String() != name {
			t.Errorf("round trip %q -> %q", name, dt.String())
		}
	}
	if _, err := ParseDataType("blob"); err == nil {
		t.Errorf("unknown type accepted")
	}
	if dt, err := ParseDataType("int"); err != nil || dt != TypeInteger {
		t.Errorf("alias int: %v %v", dt, err)
	}
}

func TestPathsTo(t *testing.T) {
	s := db1Schema()
	got := s.PathsTo("title")
	if len(got) != 1 || got[0] != "db/book/title" {
		t.Errorf("PathsTo(title) = %v", got)
	}
	if got := s.PathsTo("db"); len(got) != 1 || got[0] != "db" {
		t.Errorf("PathsTo(db) = %v", got)
	}
	if got := s.PathsTo("ghost"); len(got) != 0 {
		t.Errorf("PathsTo(ghost) = %v", got)
	}
}

func TestPathsToCyclic(t *testing.T) {
	s := New("cyc", "a")
	a := s.Declare("a")
	a.Children = []ChildDecl{{Name: "b", MaxOccurs: Unbounded}}
	b := s.Declare("b")
	b.Children = []ChildDecl{{Name: "a", MaxOccurs: Unbounded}, {Name: "leaf", MaxOccurs: 1}}
	s.Declare("leaf")
	got := s.PathsTo("leaf")
	// Must terminate and find a/b/leaf.
	if len(got) != 1 || got[0] != "a/b/leaf" {
		t.Errorf("cyclic PathsTo = %v", got)
	}
}

func TestInfer(t *testing.T) {
	doc := xmltree.MustParseString(validDB1)
	s := Infer("db1", doc)
	if s.Root != "db" {
		t.Fatalf("root = %q", s.Root)
	}
	book := s.Element("book")
	if book == nil {
		t.Fatalf("book not inferred")
	}
	// title occurs exactly once in both instances.
	cd, ok := book.Child("title")
	if !ok || cd.MinOccurs != 1 {
		t.Errorf("title child decl = %+v, %v", cd, ok)
	}
	// author is absent from the second book → min 0.
	cd, ok = book.Child("author")
	if !ok || cd.MinOccurs != 0 {
		t.Errorf("author child decl = %+v, %v", cd, ok)
	}
	// publisher on every book → required.
	ad, ok := book.Attr("publisher")
	if !ok || !ad.Required {
		t.Errorf("publisher attr = %+v, %v", ad, ok)
	}
	// year is all-integer → TypeInteger.
	if s.Element("year").Type != TypeInteger {
		t.Errorf("year type = %v", s.Element("year").Type)
	}
	if s.Element("title").Type != TypeString {
		t.Errorf("title type = %v", s.Element("title").Type)
	}
	// Inferred schema validates its source document.
	if vs := s.Validate(doc); len(vs) != 0 {
		t.Errorf("inferred schema rejects its own instance: %v", vs)
	}
}

func TestInferOptionalAttr(t *testing.T) {
	doc := xmltree.MustParseString(`<db><item x="1"/><item/></db>`)
	s := Infer("t", doc)
	ad, ok := s.Element("item").Attr("x")
	if !ok || ad.Required {
		t.Errorf("optional attr inferred as %+v, %v", ad, ok)
	}
}

func TestGuessType(t *testing.T) {
	cases := []struct {
		values []string
		want   DataType
	}{
		{[]string{"1", "2", "3"}, TypeInteger},
		{[]string{"1.5", "2"}, TypeDecimal},
		{[]string{"a", "1"}, TypeString},
		{nil, TypeString},
		{[]string{"", ""}, TypeString},
		{[]string{strings.Repeat("QUJD", 32)}, TypeImage},
	}
	for _, tc := range cases {
		if got := GuessType(tc.values); got != tc.want {
			t.Errorf("GuessType(%v) = %v, want %v", tc.values, got, tc.want)
		}
	}
}

func TestValidateEmptyDoc(t *testing.T) {
	s := db1Schema()
	doc := xmltree.NewDocument()
	vs := s.Validate(doc)
	if len(vs) == 0 {
		t.Errorf("empty document accepted")
	}
}
