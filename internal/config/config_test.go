package config

import (
	"strings"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/rewrite"
	"wmxml/internal/schema"
	"wmxml/internal/xmltree"
)

const pubSpec = `{
  "name": "publications",
  "schema": {
    "root": "db",
    "elements": {
      "db":     {"children": [{"name": "book", "max": -1}]},
      "book":   {"attrs": [{"name": "publisher", "required": true}],
                 "children": [{"name": "title", "min": 1, "max": 1},
                              {"name": "editor", "min": 1, "max": 1},
                              {"name": "year", "min": 1, "max": 1}]},
      "title":  {"type": "string"},
      "editor": {"type": "string"},
      "year":   {"type": "integer"}
    }
  },
  "keys": [{"scope": "db/book", "path": "title"}],
  "fds":  [{"scope": "db/book", "determinant": "editor", "dependent": "@publisher"}],
  "targets":   ["db/book/year"],
  "templates": ["db/book[title]/year"]
}`

func TestParseSpec(t *testing.T) {
	s, err := Parse([]byte(pubSpec))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.BuildSchema()
	if err != nil {
		t.Fatal(err)
	}
	if sch.Root != "db" {
		t.Errorf("root = %q", sch.Root)
	}
	book := sch.Element("book")
	if book == nil {
		t.Fatalf("book missing")
	}
	if ad, ok := book.Attr("publisher"); !ok || !ad.Required {
		t.Errorf("publisher attr = %+v %v", ad, ok)
	}
	cd, ok := book.Child("title")
	if !ok || cd.MinOccurs != 1 || cd.MaxOccurs != 1 {
		t.Errorf("title child = %+v", cd)
	}
	// max omitted defaults to unbounded.
	bd, _ := sch.Element("db").Child("book")
	if bd.MaxOccurs != schema.Unbounded {
		t.Errorf("book max = %d", bd.MaxOccurs)
	}
	if sch.Element("year").Type != schema.TypeInteger {
		t.Errorf("year type = %v", sch.Element("year").Type)
	}
	cat := s.BuildCatalog()
	if len(cat.Keys) != 1 || cat.Keys[0].KeyPath != "title" {
		t.Errorf("keys = %+v", cat.Keys)
	}
	if len(cat.FDs) != 1 || cat.FDs[0].Dependent != "@publisher" {
		t.Errorf("fds = %+v", cat.FDs)
	}
}

func TestSpecValidatesDocument(t *testing.T) {
	s, err := Parse([]byte(pubSpec))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.BuildSchema()
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParseString(
		`<db><book publisher="mkp"><title>T</title><editor>E</editor><year>1998</year></book></db>`)
	if vs := sch.Validate(doc); len(vs) != 0 {
		t.Errorf("valid doc rejected: %v", vs)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"broken-json", `{`},
		{"no-root", `{"schema":{"elements":{"a":{}}}}`},
		{"no-elements", `{"schema":{"root":"a"}}`},
		{"root-undeclared", `{"schema":{"root":"a","elements":{"b":{}}}}`},
		{"bad-type", `{"schema":{"root":"a","elements":{"a":{"type":"blob"}}}}`},
		{"dangling-child", `{"schema":{"root":"a","elements":{"a":{"children":[{"name":"ghost"}]}}}}`},
		{"bad-bounds", `{"schema":{"root":"a","elements":{"a":{"children":[{"name":"a","min":3,"max":1}]}}}}`},
		{"empty-key", `{"schema":{"root":"a","elements":{"a":{}}},"keys":[{"scope":"a"}]}`},
		{"empty-fd", `{"schema":{"root":"a","elements":{"a":{}}},"fds":[{"scope":"a"}]}`},
		{"unnamed-attr", `{"schema":{"root":"a","elements":{"a":{"attrs":[{"required":true}]}}}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.json)); err == nil {
				t.Errorf("spec accepted")
			}
		})
	}
}

func TestFromPartsRoundTrip(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 20, Seed: 1, WithCovers: true})
	spec := FromParts(ds.Name, ds.Schema, ds.Catalog, ds.Targets, ds.Templates)
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("round-tripped spec invalid: %v\n%s", err, data)
	}
	sch, err := back.BuildSchema()
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt schema must validate the dataset's document.
	if vs := sch.Validate(ds.Doc); len(vs) != 0 {
		t.Errorf("rebuilt schema rejects dataset: %v", vs[:1])
	}
	cat := back.BuildCatalog()
	if len(cat.Keys) != len(ds.Catalog.Keys) || len(cat.FDs) != len(ds.Catalog.FDs) {
		t.Errorf("catalog lost constraints")
	}
	if len(back.Targets) != len(ds.Targets) || len(back.Templates) != len(ds.Templates) {
		t.Errorf("targets/templates lost")
	}
	// Image type survives.
	if sch.Element("cover").Type != schema.TypeImage {
		t.Errorf("cover type = %v", sch.Element("cover").Type)
	}
}

func TestMappingRoundTrip(t *testing.T) {
	m := rewrite.PublicationsMapping()
	data, err := MarshalMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseMapping(data)
	if err != nil {
		t.Fatalf("parse mapping: %v\n%s", err, data)
	}
	if back.Name != m.Name {
		t.Errorf("name = %q", back.Name)
	}
	if back.Source.RecordPath() != m.Source.RecordPath() ||
		back.Target.RecordPath() != m.Target.RecordPath() {
		t.Errorf("record paths changed")
	}
	// The round-tripped mapping transforms identically.
	ds := datagen.Publications(datagen.PubConfig{Books: 30, Seed: 2})
	out1, err := rewrite.Transform(ds.Doc, m)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := rewrite.Transform(ds.Doc, back)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(out1, out2, xmltree.CompareOptions{}) {
		t.Errorf("round-tripped mapping transforms differently")
	}
}

func TestParseMappingErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"m","source":{"levels":[]},"target":{"levels":[]}}`,
		`{"name":"m","source":{"levels":[{"element":"db"},{"element":"r"}],
		  "fields":[{"name":"x","loc":"bogus"}]},
		  "target":{"levels":[{"element":"db"},{"element":"r"}],"fields":[]}}`,
	}
	for _, src := range cases {
		if _, err := ParseMapping([]byte(src)); err == nil {
			t.Errorf("mapping %q accepted", truncate(src))
		}
	}
}

func truncate(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) > 60 {
		return s[:60] + "..."
	}
	return s
}
