// Package config serializes WmXML working definitions — schema, semantic
// catalog, watermark targets, usability templates and schema mappings —
// as JSON, so the system can be driven on arbitrary documents without
// recompiling (the built-in dataset presets cover the demo workloads;
// a Spec file covers everything else).
//
// A complete spec looks like:
//
//	{
//	  "name": "publications",
//	  "schema": {
//	    "root": "db",
//	    "elements": {
//	      "db":    {"children": [{"name": "book", "max": -1}]},
//	      "book":  {"attrs": [{"name": "publisher", "required": true}],
//	                "children": [{"name": "title", "min": 1, "max": 1},
//	                             {"name": "year", "min": 1, "max": 1}]},
//	      "title": {"type": "string"},
//	      "year":  {"type": "integer"}
//	    }
//	  },
//	  "keys": [{"scope": "db/book", "path": "title"}],
//	  "fds":  [{"scope": "db/book", "determinant": "editor", "dependent": "@publisher"}],
//	  "targets":   ["db/book/year"],
//	  "templates": ["db/book[title]/year"]
//	}
package config

import (
	"encoding/json"
	"fmt"
	"sort"

	"wmxml/internal/rewrite"
	"wmxml/internal/schema"
	"wmxml/internal/semantics"
)

// Spec is the on-disk description of a watermarkable document type.
type Spec struct {
	Name      string     `json:"name"`
	Schema    SchemaSpec `json:"schema"`
	Keys      []KeySpec  `json:"keys,omitempty"`
	FDs       []FDSpec   `json:"fds,omitempty"`
	Targets   []string   `json:"targets,omitempty"`
	Templates []string   `json:"templates,omitempty"`
}

// SchemaSpec mirrors schema.Schema.
type SchemaSpec struct {
	Root     string                 `json:"root"`
	Elements map[string]ElementSpec `json:"elements"`
}

// ElementSpec mirrors schema.ElementDecl.
type ElementSpec struct {
	Type     string      `json:"type,omitempty"` // string|integer|decimal|image|none
	Attrs    []AttrSpec  `json:"attrs,omitempty"`
	Children []ChildSpec `json:"children,omitempty"`
}

// AttrSpec mirrors schema.AttrDecl.
type AttrSpec struct {
	Name     string `json:"name"`
	Required bool   `json:"required,omitempty"`
	Type     string `json:"type,omitempty"`
}

// ChildSpec mirrors schema.ChildDecl. Max -1 means unbounded.
type ChildSpec struct {
	Name string `json:"name"`
	Min  int    `json:"min,omitempty"`
	Max  int    `json:"max,omitempty"`
}

// KeySpec mirrors semantics.Key.
type KeySpec struct {
	Scope string `json:"scope"`
	Path  string `json:"path"`
}

// FDSpec mirrors semantics.FD.
type FDSpec struct {
	Scope       string `json:"scope"`
	Determinant string `json:"determinant"`
	Dependent   string `json:"dependent"`
}

// Parse decodes and validates a JSON spec.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("config: parse spec: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if s.Schema.Root == "" {
		return fmt.Errorf("config: schema.root is required")
	}
	if len(s.Schema.Elements) == 0 {
		return fmt.Errorf("config: schema.elements is required")
	}
	if _, ok := s.Schema.Elements[s.Schema.Root]; !ok {
		return fmt.Errorf("config: root element %q not declared", s.Schema.Root)
	}
	for name, e := range s.Schema.Elements {
		if _, err := schema.ParseDataType(e.Type); err != nil {
			return fmt.Errorf("config: element %q: %w", name, err)
		}
		for _, a := range e.Attrs {
			if a.Name == "" {
				return fmt.Errorf("config: element %q has an unnamed attribute", name)
			}
			if _, err := schema.ParseDataType(a.Type); err != nil {
				return fmt.Errorf("config: element %q attribute %q: %w", name, a.Name, err)
			}
		}
		for _, c := range e.Children {
			if _, ok := s.Schema.Elements[c.Name]; !ok {
				return fmt.Errorf("config: element %q references undeclared child %q", name, c.Name)
			}
			if c.Max != 0 && c.Max != schema.Unbounded && c.Max < c.Min {
				return fmt.Errorf("config: element %q child %q: max %d < min %d", name, c.Name, c.Max, c.Min)
			}
		}
	}
	for _, k := range s.Keys {
		if k.Scope == "" || k.Path == "" {
			return fmt.Errorf("config: keys need scope and path")
		}
	}
	for _, f := range s.FDs {
		if f.Scope == "" || f.Determinant == "" || f.Dependent == "" {
			return fmt.Errorf("config: fds need scope, determinant and dependent")
		}
	}
	return nil
}

// BuildSchema converts the spec's schema section.
func (s *Spec) BuildSchema() (*schema.Schema, error) {
	out := schema.New(s.Name, s.Schema.Root)
	names := make([]string, 0, len(s.Schema.Elements))
	for n := range s.Schema.Elements {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.Schema.Elements[name]
		decl := out.Declare(name)
		dt, err := schema.ParseDataType(e.Type)
		if err != nil {
			return nil, err
		}
		decl.Type = dt
		if len(e.Children) > 0 && e.Type == "" {
			decl.Type = schema.TypeNone
		}
		for _, a := range e.Attrs {
			at, err := schema.ParseDataType(a.Type)
			if err != nil {
				return nil, err
			}
			decl.Attrs = append(decl.Attrs, schema.AttrDecl{Name: a.Name, Required: a.Required, Type: at})
		}
		for _, c := range e.Children {
			max := c.Max
			if max == 0 {
				max = schema.Unbounded
			}
			decl.Children = append(decl.Children, schema.ChildDecl{Name: c.Name, MinOccurs: c.Min, MaxOccurs: max})
		}
	}
	return out, nil
}

// BuildCatalog converts the spec's keys and FDs.
func (s *Spec) BuildCatalog() semantics.Catalog {
	var cat semantics.Catalog
	for _, k := range s.Keys {
		cat.Keys = append(cat.Keys, semantics.Key{Scope: k.Scope, KeyPath: k.Path})
	}
	for _, f := range s.FDs {
		cat.FDs = append(cat.FDs, semantics.FD{Scope: f.Scope, Determinant: f.Determinant, Dependent: f.Dependent})
	}
	return cat
}

// FromParts builds a Spec from working objects (the inverse of
// BuildSchema/BuildCatalog), for exporting dataset presets as files.
func FromParts(name string, sch *schema.Schema, cat semantics.Catalog, targets, templates []string) *Spec {
	s := &Spec{
		Name:      name,
		Schema:    SchemaSpec{Root: sch.Root, Elements: make(map[string]ElementSpec)},
		Targets:   targets,
		Templates: templates,
	}
	for _, n := range sch.ElementNames() {
		decl := sch.Element(n)
		es := ElementSpec{Type: decl.Type.String()}
		if decl.Type == schema.TypeNone {
			es.Type = ""
		}
		for _, a := range decl.Attrs {
			es.Attrs = append(es.Attrs, AttrSpec{Name: a.Name, Required: a.Required, Type: a.Type.String()})
		}
		for _, c := range decl.Children {
			es.Children = append(es.Children, ChildSpec{Name: c.Name, Min: c.MinOccurs, Max: c.MaxOccurs})
		}
		s.Schema.Elements[n] = es
	}
	for _, k := range cat.Keys {
		s.Keys = append(s.Keys, KeySpec{Scope: k.Scope, Path: k.KeyPath})
	}
	for _, f := range cat.FDs {
		s.FDs = append(s.FDs, FDSpec{Scope: f.Scope, Determinant: f.Determinant, Dependent: f.Dependent})
	}
	return s
}

// Marshal renders the spec as indented JSON.
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// MappingSpec is the on-disk form of a rewrite.Mapping.
type MappingSpec struct {
	Name   string   `json:"name"`
	Source ViewSpec `json:"source"`
	Target ViewSpec `json:"target"`
}

// ViewSpec mirrors rewrite.View.
type ViewSpec struct {
	Levels []LevelSpec `json:"levels"`
	Fields []FieldSpec `json:"fields"`
}

// LevelSpec mirrors rewrite.Level; Key and Loc use the "field@attr:name"
// free form split into explicit members.
type LevelSpec struct {
	Element  string `json:"element"`
	KeyField string `json:"key,omitempty"`
	KeyLoc   string `json:"loc,omitempty"` // attr:NAME | child:NAME | text
}

// FieldSpec mirrors rewrite.FieldDef.
type FieldSpec struct {
	Name  string `json:"name"`
	Loc   string `json:"loc"`
	Multi bool   `json:"multi,omitempty"`
}

// ParseMapping decodes and validates a JSON mapping.
func ParseMapping(data []byte) (rewrite.Mapping, error) {
	var ms MappingSpec
	if err := json.Unmarshal(data, &ms); err != nil {
		return rewrite.Mapping{}, fmt.Errorf("config: parse mapping: %w", err)
	}
	m := rewrite.Mapping{Name: ms.Name}
	var err error
	m.Source, err = buildView(ms.Source)
	if err != nil {
		return rewrite.Mapping{}, fmt.Errorf("config: source view: %w", err)
	}
	m.Target, err = buildView(ms.Target)
	if err != nil {
		return rewrite.Mapping{}, fmt.Errorf("config: target view: %w", err)
	}
	if err := m.Validate(); err != nil {
		return rewrite.Mapping{}, fmt.Errorf("config: %w", err)
	}
	return m, nil
}

func buildView(vs ViewSpec) (rewrite.View, error) {
	var v rewrite.View
	for _, ls := range vs.Levels {
		lvl := rewrite.Level{Element: ls.Element, KeyField: ls.KeyField}
		if ls.KeyField != "" {
			loc, err := rewrite.ParseLoc(ls.KeyLoc)
			if err != nil {
				return v, err
			}
			lvl.KeyLoc = loc
		}
		v.Levels = append(v.Levels, lvl)
	}
	for _, fs := range vs.Fields {
		loc, err := rewrite.ParseLoc(fs.Loc)
		if err != nil {
			return v, err
		}
		v.Fields = append(v.Fields, rewrite.FieldDef{Name: fs.Name, Loc: loc, Multi: fs.Multi})
	}
	return v, nil
}

// MarshalMapping renders a mapping as indented JSON.
func MarshalMapping(m rewrite.Mapping) ([]byte, error) {
	ms := MappingSpec{Name: m.Name, Source: viewSpec(m.Source), Target: viewSpec(m.Target)}
	return json.MarshalIndent(ms, "", "  ")
}

func viewSpec(v rewrite.View) ViewSpec {
	var vs ViewSpec
	for _, l := range v.Levels {
		ls := LevelSpec{Element: l.Element, KeyField: l.KeyField}
		if l.KeyField != "" {
			ls.KeyLoc = l.KeyLoc.String()
		}
		vs.Levels = append(vs.Levels, ls)
	}
	for _, f := range v.Fields {
		vs.Fields = append(vs.Fields, FieldSpec{Name: f.Name, Loc: f.Loc.String(), Multi: f.Multi})
	}
	return vs
}
