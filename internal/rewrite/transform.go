package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"wmxml/internal/xmltree"
)

// Record is one flat record extracted from a document: single-valued
// fields in Values, multi-valued ones in Lists.
type Record struct {
	Values map[string]string
	Lists  map[string][]string
}

// newRecord allocates an empty record.
func newRecord() Record {
	return Record{Values: make(map[string]string), Lists: make(map[string][]string)}
}

// canonical renders the record deterministically for multiset comparison.
func (r Record) canonical() string {
	var sb strings.Builder
	keys := make([]string, 0, len(r.Values))
	for k := range r.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteString("=\x00")
		sb.WriteString(r.Values[k])
		sb.WriteString("\x00;")
	}
	lkeys := make([]string, 0, len(r.Lists))
	for k := range r.Lists {
		lkeys = append(lkeys, k)
	}
	sort.Strings(lkeys)
	for _, k := range lkeys {
		vals := append([]string(nil), r.Lists[k]...)
		sort.Strings(vals)
		sb.WriteString(k)
		sb.WriteString("*=\x00")
		sb.WriteString(strings.Join(vals, "\x00,"))
		sb.WriteString("\x00;")
	}
	return sb.String()
}

// Extract reads all records out of a document according to the view.
func Extract(doc *xmltree.Node, v View) ([]Record, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	root := doc.Root()
	if root == nil {
		return nil, fmt.Errorf("rewrite: document has no root")
	}
	if root.Name != v.Levels[0].Element {
		return nil, fmt.Errorf("rewrite: root is %q, view expects %q", root.Name, v.Levels[0].Element)
	}
	var out []Record
	var walk func(e *xmltree.Node, level int, inherited map[string]string) error
	walk = func(e *xmltree.Node, level int, inherited map[string]string) error {
		if level == len(v.Levels)-1 {
			// e is a record element.
			rec := newRecord()
			for k, val := range inherited {
				rec.Values[k] = val
			}
			for _, f := range v.Fields {
				if f.Multi {
					for _, c := range e.ChildElementsNamed(f.Loc.Name) {
						rec.Lists[f.Name] = append(rec.Lists[f.Name], c.Text())
					}
					continue
				}
				if f.Loc.Kind == LocText {
					// Element text excluding child-element text: direct
					// text children only, so child fields don't bleed in.
					rec.Values[f.Name] = directText(e)
					continue
				}
				val, ok := f.Loc.read(e)
				if ok {
					rec.Values[f.Name] = val
				}
			}
			out = append(out, rec)
			return nil
		}
		next := v.Levels[level+1]
		for _, c := range e.ChildElementsNamed(next.Element) {
			inh := inherited
			if next.KeyField != "" {
				val, ok := next.KeyLoc.read(c)
				if !ok {
					return fmt.Errorf("rewrite: %s missing key %s", c.Path(), next.KeyLoc)
				}
				inh = make(map[string]string, len(inherited)+1)
				for k, v2 := range inherited {
					inh[k] = v2
				}
				inh[next.KeyField] = val
			}
			if err := walk(c, level+1, inh); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0, map[string]string{}); err != nil {
		return nil, err
	}
	return out, nil
}

// directText concatenates the direct text children of an element.
func directText(e *xmltree.Node) string {
	var sb strings.Builder
	for _, c := range e.Children {
		if c.Kind == xmltree.TextNode {
			sb.WriteString(c.Value)
		}
	}
	return sb.String()
}

// Build lays records out as a new document according to the view. Groups
// appear in order of first occurrence; records keep their input order
// within a group, which preserves document order as far as the grouping
// allows.
func Build(records []Record, v View) (*xmltree.Node, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	doc := xmltree.NewDocument()
	root := xmltree.NewElement(v.Levels[0].Element)
	doc.AppendChild(root)
	for _, rec := range records {
		parent := root
		for li := 1; li < len(v.Levels)-1; li++ {
			lvl := v.Levels[li]
			val, ok := rec.Values[lvl.KeyField]
			if !ok {
				return nil, fmt.Errorf("rewrite: record missing grouping field %q", lvl.KeyField)
			}
			parent = findOrCreateGroup(parent, lvl, val)
		}
		recElem := xmltree.NewElement(v.Levels[len(v.Levels)-1].Element)
		parent.AppendChild(recElem)
		for _, f := range v.Fields {
			if f.Multi {
				for _, val := range rec.Lists[f.Name] {
					recElem.AppendChild(xmltree.TextElem(f.Loc.Name, val))
				}
				continue
			}
			val, ok := rec.Values[f.Name]
			if !ok {
				continue // field absent in this record: omit
			}
			f.Loc.write(recElem, val)
		}
	}
	return doc, nil
}

// findOrCreateGroup returns the child of parent representing the group
// with the given key value, creating it if necessary.
func findOrCreateGroup(parent *xmltree.Node, lvl Level, val string) *xmltree.Node {
	for _, c := range parent.ChildElementsNamed(lvl.Element) {
		if got, ok := lvl.KeyLoc.read(c); ok && got == val {
			return c
		}
	}
	g := xmltree.NewElement(lvl.Element)
	lvl.KeyLoc.write(g, val)
	parent.AppendChild(g)
	return g
}

// Transform re-organizes a document from the mapping's source layout to
// its target layout — the paper's re-organization attack (figure 1) and
// the substrate of rewriting tests.
func Transform(doc *xmltree.Node, m Mapping) (*xmltree.Node, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	records, err := Extract(doc, m.Source)
	if err != nil {
		return nil, err
	}
	return Build(records, m.Target)
}

// RecordsEqual compares two record bags as multisets, ignoring order.
// It is the information-preservation check of experiment F1: a
// re-organization "without losing any information" keeps the record bag
// identical.
func RecordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, r := range a {
		counts[r.canonical()]++
	}
	for _, r := range b {
		counts[r.canonical()]--
	}
	for _, n := range counts {
		if n != 0 {
			return false
		}
	}
	return true
}

// ProjectRecords keeps only the named fields of each record — used to
// compare documents whose views carry different field subsets.
func ProjectRecords(records []Record, fields []string) []Record {
	keep := make(map[string]bool, len(fields))
	for _, f := range fields {
		keep[f] = true
	}
	out := make([]Record, len(records))
	for i, r := range records {
		p := newRecord()
		for k, v := range r.Values {
			if keep[k] {
				p.Values[k] = v
			}
		}
		for k, v := range r.Lists {
			if keep[k] {
				p.Lists[k] = append([]string(nil), v...)
			}
		}
		out[i] = p
	}
	return out
}
