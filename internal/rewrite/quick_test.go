package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wmxml/internal/datagen"
	"wmxml/internal/xpath"
)

// TestQuickTransformPreservesRecords: for random dataset seeds, the
// record bag is invariant under Transform (source → target → source).
func TestQuickTransformPreservesRecords(t *testing.T) {
	m := PublicationsMapping()
	f := func(seed int64, size uint8) bool {
		n := 10 + int(size)%120
		ds := datagen.Publications(datagen.PubConfig{Books: n, Seed: seed})
		r1, err := Extract(ds.Doc, m.Source)
		if err != nil {
			return false
		}
		db2, err := Transform(ds.Doc, m)
		if err != nil {
			return false
		}
		back, err := Transform(db2, m.Invert())
		if err != nil {
			return false
		}
		r2, err := Extract(back, m.Source)
		if err != nil {
			return false
		}
		return RecordsEqual(r1, r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("transform round-trip property: %v", err)
	}
}

// TestQuickRewritePreservesAnswers: for random books, the rewritten
// key-lookup query answers identically on the transformed document.
func TestQuickRewritePreservesAnswers(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 150, Seed: 71})
	m := PublicationsMapping()
	db2, err := Transform(ds.Doc, m)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewQueryRewriter(m)
	if err != nil {
		t.Fatal(err)
	}
	books := ds.Doc.Root().ChildElementsNamed("book")
	rr := rand.New(rand.NewSource(72))
	fields := []string{"year", "price", "@publisher"}
	f := func(bookPick, fieldPick uint16) bool {
		book := books[int(bookPick)%len(books)]
		title := book.FirstChildNamed("title").Text()
		field := fields[int(fieldPick)%len(fields)]
		src := "/db/book[title='" + title + "']/" + field
		q, err := xpath.Compile(src)
		if err != nil {
			return false
		}
		rq, err := rw.RewriteQuery(q)
		if err != nil {
			return false
		}
		want := q.SelectValues(ds.Doc)
		got := rq.SelectValues(db2)
		if len(want) != 1 || len(got) != 1 {
			return false
		}
		return want[0] == got[0]
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rr}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("rewrite answer-preservation property: %v", err)
	}
}

// TestQuickFDQueryRewrite: FD-determinant queries (grouped identities)
// preserve their value sets too.
func TestQuickFDQueryRewrite(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 150, Editors: 12, Seed: 73})
	m := PublicationsMapping()
	db2, err := Transform(ds.Doc, m)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewQueryRewriter(m)
	if err != nil {
		t.Fatal(err)
	}
	editors := xpath.MustCompile("/db/book/editor").SelectValues(ds.Doc)
	f := func(pick uint16) bool {
		ed := editors[int(pick)%len(editors)]
		q, err := xpath.Compile("/db/book[editor='" + ed + "']/@publisher")
		if err != nil {
			return false
		}
		rq, err := rw.RewriteQuery(q)
		if err != nil {
			return false
		}
		want := dedupe(q.SelectValues(ds.Doc))
		got := dedupe(rq.SelectValues(db2))
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("FD query rewrite property: %v", err)
	}
}

func dedupe(in []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
