package rewrite

import (
	"fmt"
	"strings"

	"wmxml/internal/xpath"
)

// QueryRewriter rewrites identity queries expressed against a mapping's
// source layout into equivalent queries against the target layout
// (paper figure 2: "watermark detect query" → rewrite → Y1, Y2, Y3).
// It implements the core.Rewriter interface.
type QueryRewriter struct {
	m Mapping
}

// NewQueryRewriter builds a rewriter for the mapping.
func NewQueryRewriter(m Mapping) (*QueryRewriter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &QueryRewriter{m: m}, nil
}

// Mapping returns the underlying mapping.
func (rw *QueryRewriter) Mapping() Mapping { return rw.m }

// RewriteQuery translates an identity query of the shape
//
//	/source-record-path[selector-rel = 'value']/field-rel
//
// into the target layout. Three shapes arise, depending on where the
// selector and the field land in the target hierarchy:
//
//   - both at the record level:   /L1/…/Lk[sel'='v']/field'
//   - field hoisted to level i:   /L1/…/Li[desc-path-to-sel = 'v']/fieldLoc
//   - selector hoisted to level j: /L1/…/Lj[selLoc='v']/Lj+1/…/Lk/field'
//
// Positional queries (the naive-identity ablation) are rejected: an
// ordinal has no meaning once the record order is re-grouped — which is
// precisely why WmXML does not use positional identifiers.
func (rw *QueryRewriter) RewriteQuery(q *xpath.Query) (*xpath.Query, error) {
	p := q.Path()
	srcLevels := rw.m.Source.Levels
	k := len(srcLevels)
	if len(p.Steps) < k {
		return nil, fmt.Errorf("rewrite: query %q shorter than source record path", q)
	}
	for i := 0; i < k; i++ {
		st := p.Steps[i]
		if st.Axis != xpath.AxisChild || st.Name != srcLevels[i].Element {
			return nil, fmt.Errorf("rewrite: query %q does not follow source record path %q",
				q, rw.m.Source.RecordPath())
		}
		if i < k-1 && len(st.Predicates) > 0 {
			return nil, fmt.Errorf("rewrite: query %q has predicates above the record level", q)
		}
	}
	recStep := p.Steps[k-1]
	if len(recStep.Predicates) != 1 {
		return nil, fmt.Errorf("rewrite: query %q must carry exactly one record predicate", q)
	}
	selRel, selVal, err := splitEqPredicate(recStep.Predicates[0])
	if err != nil {
		return nil, fmt.Errorf("rewrite: query %q: %w", q, err)
	}

	// Resolve selector and field to mapping fields via their source
	// relative paths.
	selField, ok := rw.m.Source.fieldByRelPath(selRel)
	if !ok {
		return nil, fmt.Errorf("rewrite: selector %q is not a mapped field", selRel)
	}
	fieldRel, err := renderTrailing(p.Steps[k:])
	if err != nil {
		return nil, err
	}
	var fieldName string
	if fieldRel == "." {
		// Selecting the record element itself: its value is the text
		// field if the source has one.
		f, ok := rw.m.Source.fieldByRelPath(".")
		if !ok {
			return nil, fmt.Errorf("rewrite: query selects the record element but source has no text field")
		}
		fieldName = f.Name
	} else {
		f, ok := rw.m.Source.fieldByRelPath(fieldRel)
		if !ok {
			return nil, fmt.Errorf("rewrite: field %q is not a mapped field", fieldRel)
		}
		fieldName = f.Name
	}

	return rw.buildTargetQuery(selField.Name, selVal, fieldName)
}

// buildTargetQuery assembles the target-layout query for selector
// (name, value) and the requested field.
func (rw *QueryRewriter) buildTargetQuery(selName, selVal, fieldName string) (*xpath.Query, error) {
	tgt := rw.m.Target
	selLev, selLoc, _, ok := tgt.fieldLevel(selName)
	if !ok {
		return nil, fmt.Errorf("rewrite: selector field %q missing from target layout", selName)
	}
	fLev, fLoc, _, ok := tgt.fieldLevel(fieldName)
	if !ok {
		return nil, fmt.Errorf("rewrite: field %q missing from target layout", fieldName)
	}

	var sb strings.Builder
	if fLev >= selLev {
		// Navigate to the selector's level, pin it, then descend to the
		// field.
		sb.WriteString("/")
		sb.WriteString(levelPath(tgt.Levels[:selLev+1]))
		sb.WriteString("[")
		sb.WriteString(predicatePath(nil, selLoc))
		sb.WriteString(eqLiteral(selVal))
		sb.WriteString("]")
		for i := selLev + 1; i <= fLev; i++ {
			sb.WriteString("/")
			sb.WriteString(tgt.Levels[i].Element)
		}
		appendFieldStep(&sb, fLoc)
	} else {
		// Field lives above the selector: navigate to the field's level
		// and pin it through a descending predicate that reaches the
		// selector.
		sb.WriteString("/")
		sb.WriteString(levelPath(tgt.Levels[:fLev+1]))
		sb.WriteString("[")
		sb.WriteString(predicatePath(tgt.Levels[fLev+1:selLev+1], selLoc))
		sb.WriteString(eqLiteral(selVal))
		sb.WriteString("]")
		appendFieldStep(&sb, fLoc)
	}
	return xpath.Compile(sb.String())
}

// levelPath joins level element names.
func levelPath(levels []Level) string {
	names := make([]string, len(levels))
	for i, l := range levels {
		names[i] = l.Element
	}
	return strings.Join(names, "/")
}

// predicatePath renders the relative path descending through the given
// levels and ending at the value location.
func predicatePath(levels []Level, loc Loc) string {
	var parts []string
	for _, l := range levels {
		parts = append(parts, l.Element)
	}
	rel := loc.RelPath()
	if rel != "." {
		parts = append(parts, rel)
	}
	if len(parts) == 0 {
		return "."
	}
	return strings.Join(parts, "/")
}

// appendFieldStep appends the final field step ("/title", "/@name", or
// nothing for text fields, whose value is the element itself).
func appendFieldStep(sb *strings.Builder, loc Loc) {
	rel := loc.RelPath()
	if rel == "." {
		return
	}
	sb.WriteString("/")
	sb.WriteString(rel)
}

// eqLiteral renders ='value' with XPath 1.0 quoting.
func eqLiteral(v string) string {
	if !strings.Contains(v, "'") {
		return "='" + v + "'"
	}
	return `="` + v + `"`
}

// splitEqPredicate decomposes a predicate of the form relpath = 'literal'
// (either operand order) into the relative path and the literal.
func splitEqPredicate(e xpath.Expr) (rel, val string, err error) {
	b, ok := e.(xpath.Binary)
	if !ok || b.Op != "=" {
		if _, isNum := e.(xpath.Number); isNum {
			return "", "", fmt.Errorf("positional predicate cannot be rewritten across schemas")
		}
		return "", "", fmt.Errorf("record predicate must be an equality")
	}
	pe, peOK := b.L.(xpath.PathExpr)
	lit, litOK := b.R.(xpath.String)
	if !peOK || !litOK {
		pe, peOK = b.R.(xpath.PathExpr)
		lit, litOK = b.L.(xpath.String)
	}
	if !peOK || !litOK {
		return "", "", fmt.Errorf("record predicate must compare a path to a literal")
	}
	return pe.Path.String(), lit.Value, nil
}

// renderTrailing renders the steps after the record step as a relative
// path ("." when there are none).
func renderTrailing(steps []xpath.Step) (string, error) {
	if len(steps) == 0 {
		return ".", nil
	}
	parts := make([]string, 0, len(steps))
	for _, st := range steps {
		if len(st.Predicates) > 0 {
			return "", fmt.Errorf("rewrite: predicates below the record level are not supported")
		}
		switch st.Axis {
		case xpath.AxisChild:
			parts = append(parts, st.Name)
		case xpath.AxisAttribute:
			parts = append(parts, "@"+st.Name)
		case xpath.AxisText:
			parts = append(parts, "text()")
		default:
			return "", fmt.Errorf("rewrite: unsupported axis below record level")
		}
	}
	return strings.Join(parts, "/"), nil
}
