package rewrite

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

func TestParseLoc(t *testing.T) {
	cases := []struct {
		in   string
		want Loc
		ok   bool
	}{
		{"attr:name", Loc{Kind: LocAttr, Name: "name"}, true},
		{"child:title", Loc{Kind: LocChild, Name: "title"}, true},
		{"text", Loc{Kind: LocText}, true},
		{"attr:", Loc{}, false},
		{"child:", Loc{}, false},
		{"elem:x", Loc{}, false},
	}
	for _, tc := range cases {
		got, err := ParseLoc(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseLoc(%q) err = %v", tc.in, err)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseLoc(%q) = %+v", tc.in, got)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("Loc round trip: %q -> %q", tc.in, got.String())
		}
	}
}

func TestLocRelPath(t *testing.T) {
	if (Loc{Kind: LocAttr, Name: "x"}).RelPath() != "@x" {
		t.Errorf("attr rel path")
	}
	if (Loc{Kind: LocChild, Name: "t"}).RelPath() != "t" {
		t.Errorf("child rel path")
	}
	if (Loc{Kind: LocText}).RelPath() != "." {
		t.Errorf("text rel path")
	}
}

func TestFigure1Transform(t *testing.T) {
	db1 := datagen.Figure1DB1()
	m := Figure1Mapping()
	db2, err := Transform(db1, m)
	if err != nil {
		t.Fatal(err)
	}
	root := db2.Root()
	if root.Name != "db" {
		t.Fatalf("root = %q", root.Name)
	}
	pubs := root.ChildElementsNamed("publisher")
	if len(pubs) != 2 {
		t.Fatalf("publishers = %d, want 2 (mkp, acm)", len(pubs))
	}
	var names []string
	for _, p := range pubs {
		n, _ := p.Attr("name")
		names = append(names, n)
	}
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"acm", "mkp"}) {
		t.Errorf("publisher names = %v", names)
	}
	// mkp has one editor group (Harrypotter) with two books.
	for _, p := range pubs {
		if n, _ := p.Attr("name"); n != "mkp" {
			continue
		}
		eds := p.ChildElementsNamed("editor")
		if len(eds) != 1 {
			t.Fatalf("mkp editors = %d", len(eds))
		}
		if v, _ := eds[0].Attr("name"); v != "Harrypotter" {
			t.Errorf("editor name = %q", v)
		}
		books := eds[0].ChildElementsNamed("book")
		if len(books) != 2 {
			t.Errorf("mkp books = %d", len(books))
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	db1 := datagen.Figure1DB1()
	m := Figure1Mapping()
	db2, err := Transform(db1, m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Transform(db2, m.Invert())
	if err != nil {
		t.Fatal(err)
	}
	// Record bags must be identical (order may differ).
	r1, err := Extract(db1, m.Source)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Extract(back, m.Source)
	if err != nil {
		t.Fatal(err)
	}
	if !RecordsEqual(r1, r2) {
		t.Errorf("round trip lost records")
	}
}

func TestRecordsEqualDetectsLoss(t *testing.T) {
	db1 := datagen.Figure1DB1()
	m := Figure1Mapping()
	r1, _ := Extract(db1, m.Source)
	if !RecordsEqual(r1, r1) {
		t.Errorf("records not equal to themselves")
	}
	if RecordsEqual(r1, r1[:len(r1)-1]) {
		t.Errorf("shorter bag equal")
	}
	mod := make([]Record, len(r1))
	copy(mod, r1)
	cp := newRecord()
	for k, v := range r1[0].Values {
		cp.Values[k] = v
	}
	cp.Values["year"] = "1000"
	mod[0] = cp
	if RecordsEqual(r1, mod) {
		t.Errorf("altered bag equal")
	}
}

func TestProjectRecords(t *testing.T) {
	db1 := datagen.Figure1DB1()
	m := Figure1Mapping()
	recs, _ := Extract(db1, m.Source)
	proj := ProjectRecords(recs, []string{"title", "author"})
	for _, r := range proj {
		if _, ok := r.Values["year"]; ok {
			t.Errorf("projection kept year")
		}
		if _, ok := r.Values["title"]; !ok {
			t.Errorf("projection dropped title")
		}
		if len(r.Lists["author"]) == 0 {
			t.Errorf("projection dropped authors")
		}
	}
}

func mustRewrite(t *testing.T, rw *QueryRewriter, src string) *xpath.Query {
	t.Helper()
	q, err := xpath.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatalf("rewrite %q: %v", src, err)
	}
	return out
}

func TestRewriteQueryShapes(t *testing.T) {
	rw, err := NewQueryRewriter(Figure1Mapping())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  string
		want string
	}{
		// Record-level selector, record-level field.
		{"/db/book[title='Database Design']/year",
			"/db/publisher/editor/book[title='Database Design']/year"},
		// Selector hoisted to a grouping level (the FD determinant),
		// field hoisted above it.
		{"/db/book[editor='Harrypotter']/@publisher",
			"/db/publisher[editor/@name='Harrypotter']/@name"},
		// Record-level selector, field hoisted two levels up.
		{"/db/book[title='Database Design']/@publisher",
			"/db/publisher[editor/book/title='Database Design']/@name"},
		// Selector hoisted, field at record level.
		{"/db/book[editor='Gamer']/title",
			"/db/publisher/editor[@name='Gamer']/book/title"},
	}
	for _, tc := range cases {
		got := mustRewrite(t, rw, tc.src)
		if got.String() != tc.want {
			t.Errorf("rewrite %q = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestRewriteSemanticsPreserved(t *testing.T) {
	// The rewritten query must return the same values on db2 as the
	// original does on db1 — the paper's §2.1 equivalence.
	db1 := datagen.Figure1DB1()
	m := Figure1Mapping()
	db2, err := Transform(db1, m)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewQueryRewriter(m)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"/db/book[title='Database Design']/year",
		"/db/book[title='Readings in Database Systems']/author",
		"/db/book[title='XML Query Processing']/@publisher",
		"/db/book[editor='Harrypotter']/@publisher",
		"/db/book[editor='Gamer']/title",
	}
	for _, src := range queries {
		orig := xpath.MustCompile(src)
		origVals := append([]string(nil), orig.SelectValues(db1)...)
		rewritten := mustRewrite(t, rw, src)
		newVals := append([]string(nil), rewritten.SelectValues(db2)...)
		sort.Strings(origVals)
		sort.Strings(newVals)
		// FD-grouped fields collapse duplicates in the target layout;
		// compare sets.
		if !reflect.DeepEqual(uniq(origVals), uniq(newVals)) {
			t.Errorf("query %q: db1 %v vs db2 %v", src, origVals, newVals)
		}
	}
}

func uniq(in []string) []string {
	var out []string
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func TestRewriteRejectsPositional(t *testing.T) {
	rw, _ := NewQueryRewriter(Figure1Mapping())
	q := xpath.MustCompile("/db/book[2]/year")
	if _, err := rw.RewriteQuery(q); err == nil {
		t.Errorf("positional query rewritten")
	} else if !strings.Contains(err.Error(), "positional") {
		t.Errorf("error = %v", err)
	}
}

func TestRewriteRejectsUnmappable(t *testing.T) {
	rw, _ := NewQueryRewriter(Figure1Mapping())
	cases := []string{
		"/catalog/book[title='X']/year",      // wrong root
		"/db/book[title='X']/price",          // unmapped field
		"/db/book[isbn='X']/year",            // unmapped selector
		"/db/book/year",                      // no predicate
		"/db/book[title='X'][year='1998']/t", // two predicates
		"/db/book[contains(title,'X')]/year", // non-equality predicate
		"/db/book[title='X']/year[1]",        // predicate below record
	}
	for _, src := range cases {
		q, err := xpath.Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if _, err := rw.RewriteQuery(q); err == nil {
			t.Errorf("query %q rewritten, want error", src)
		}
	}
}

func TestTextLocTarget(t *testing.T) {
	// A target like the paper's db2 where the record value *is* the
	// element text: <book>TITLE</book>.
	m := Mapping{
		Name: "text-target",
		Source: View{
			Levels: []Level{{Element: "db"}, {Element: "book"}},
			Fields: []FieldDef{
				{Name: "publisher", Loc: Loc{Kind: LocAttr, Name: "publisher"}},
				{Name: "title", Loc: Loc{Kind: LocChild, Name: "title"}},
			},
		},
		Target: View{
			Levels: []Level{
				{Element: "db"},
				{Element: "publisher", KeyField: "publisher", KeyLoc: Loc{Kind: LocAttr, Name: "name"}},
				{Element: "book"},
			},
			Fields: []FieldDef{{Name: "title", Loc: Loc{Kind: LocText}}},
		},
	}
	src := xmltree.MustParseString(`<db>
	  <book publisher="mkp"><title>Readings</title></book>
	  <book publisher="acm"><title>Design</title></book>
	</db>`)
	out, err := Transform(src, m)
	if err != nil {
		t.Fatal(err)
	}
	books := xmltree.DescendantsNamed(out, "book")
	if len(books) != 2 {
		t.Fatalf("books = %d", len(books))
	}
	if books[0].Text() != "Readings" {
		t.Errorf("book text = %q", books[0].Text())
	}
	rw, err := NewQueryRewriter(m)
	if err != nil {
		t.Fatal(err)
	}
	q := mustRewrite(t, rw, "/db/book[title='Design']/@publisher")
	vals := q.SelectValues(out)
	if !reflect.DeepEqual(vals, []string{"acm"}) {
		t.Errorf("text-loc rewrite eval = %v (query %q)", vals, q)
	}
	// And selecting the title itself: ends at the record element.
	q2 := mustRewrite(t, rw, "/db/book[@publisher='mkp']/title")
	if got := q2.SelectValues(out); !reflect.DeepEqual(got, []string{"Readings"}) {
		t.Errorf("title via text loc = %v (query %q)", got, q2)
	}
}

func TestMappingValidate(t *testing.T) {
	m := Figure1Mapping()
	if err := m.Validate(); err != nil {
		t.Errorf("figure-1 mapping invalid: %v", err)
	}
	bad := m
	bad.Target.Fields = append(bad.Target.Fields, FieldDef{Name: "ghost", Loc: Loc{Kind: LocChild, Name: "g"}})
	if err := bad.Validate(); err == nil {
		t.Errorf("target-only field accepted")
	}
	dup := Figure1Mapping()
	dup.Source.Fields = append(dup.Source.Fields, dup.Source.Fields[0])
	if err := dup.Validate(); err == nil {
		t.Errorf("duplicate field accepted")
	}
	noLevels := Mapping{Source: View{}, Target: Figure1Mapping().Target}
	if err := noLevels.Validate(); err == nil {
		t.Errorf("empty view accepted")
	}
}

func TestExtractErrors(t *testing.T) {
	m := Figure1Mapping()
	wrongRoot := xmltree.MustParseString(`<catalog/>`)
	if _, err := Extract(wrongRoot, m.Source); err == nil {
		t.Errorf("wrong root accepted")
	}
	// Missing grouping key on target extraction.
	broken := xmltree.MustParseString(`<db><publisher><editor name="e"><book><title>T</title></book></editor></publisher></db>`)
	if _, err := Extract(broken, m.Target); err == nil {
		t.Errorf("missing key value accepted")
	}
}

func TestBuildMissingGroupField(t *testing.T) {
	m := Figure1Mapping()
	rec := newRecord()
	rec.Values["title"] = "T" // no publisher/editor
	if _, err := Build([]Record{rec}, m.Target); err == nil {
		t.Errorf("record without grouping fields accepted")
	}
}

func TestTransformLargeDataset(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Editors: 25, Publishers: 6, Seed: 77})
	m := Figure1Mapping()
	out, err := Transform(ds.Doc, m)
	if err != nil {
		t.Fatal(err)
	}
	// Every title must be reachable in the new layout.
	titles := xpath.MustCompile("//title").SelectValues(out)
	if len(titles) != 300 {
		t.Errorf("titles after transform = %d", len(titles))
	}
	// Publisher values de-duplicated: one element per (publisher) with
	// editors below.
	pubs := out.Root().ChildElementsNamed("publisher")
	if len(pubs) == 0 || len(pubs) > 6 {
		t.Errorf("publisher groups = %d", len(pubs))
	}
}
