// Package rewrite implements schema mappings, document re-organization
// and query rewriting — the machinery behind the paper's figure 2:
// detection queries are rewritten "according to the mappings between the
// original schema and the new schema" so that identity queries keep
// retrieving the same data elements after an adversary re-shreds the
// document (figure 1's db1.xml → db2.xml).
//
// The mapping model is deliberately record-oriented: a document is viewed
// as a bag of flat records (the instances of one scope, e.g. db/book,
// with named fields), and a View describes how those records are laid
// out as a tree — which fields become grouping levels, and where each
// value lives (attribute, child element, or element text). A Mapping is
// a pair of Views over the same record type. This captures the paper's
// example exactly: db1.xml stores book records flat; db2.xml groups them
// under publisher and nests values differently. Full Clio-style mapping
// *discovery* (Yu–Popa [8]) is out of scope for the paper too — it cites
// query rewriting as an external technique and notes the rewriter "still
// needs human intervention"; supplying the Mapping is that intervention.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"wmxml/internal/xmltree"
)

// LocKind says where a value lives relative to its element.
type LocKind uint8

const (
	// LocAttr stores the value as an attribute of the element.
	LocAttr LocKind = iota
	// LocChild stores the value as the text of a child element.
	LocChild
	// LocText stores the value as the text of the element itself.
	LocText
)

// Loc is a value location: kind plus the attribute/child name.
type Loc struct {
	Kind LocKind
	Name string
}

// ParseLoc parses "attr:NAME", "child:NAME" or "text".
func ParseLoc(s string) (Loc, error) {
	switch {
	case s == "text":
		return Loc{Kind: LocText}, nil
	case strings.HasPrefix(s, "attr:"):
		n := s[len("attr:"):]
		if n == "" {
			return Loc{}, fmt.Errorf("rewrite: empty attribute name in %q", s)
		}
		return Loc{Kind: LocAttr, Name: n}, nil
	case strings.HasPrefix(s, "child:"):
		n := s[len("child:"):]
		if n == "" {
			return Loc{}, fmt.Errorf("rewrite: empty child name in %q", s)
		}
		return Loc{Kind: LocChild, Name: n}, nil
	default:
		return Loc{}, fmt.Errorf("rewrite: bad location %q (want attr:NAME, child:NAME or text)", s)
	}
}

// String renders the location in the ParseLoc syntax.
func (l Loc) String() string {
	switch l.Kind {
	case LocAttr:
		return "attr:" + l.Name
	case LocChild:
		return "child:" + l.Name
	default:
		return "text"
	}
}

// RelPath renders the location as an XPath step relative to its element:
// "@name", "name" or ".".
func (l Loc) RelPath() string {
	switch l.Kind {
	case LocAttr:
		return "@" + l.Name
	case LocChild:
		return l.Name
	default:
		return "."
	}
}

// read extracts the location's value from an element.
func (l Loc) read(e *xmltree.Node) (string, bool) {
	switch l.Kind {
	case LocAttr:
		return e.Attr(l.Name)
	case LocChild:
		c := e.FirstChildNamed(l.Name)
		if c == nil {
			return "", false
		}
		return c.Text(), true
	default:
		return e.Text(), true
	}
}

// write stores a value at the location on an element.
func (l Loc) write(e *xmltree.Node, v string) {
	switch l.Kind {
	case LocAttr:
		e.SetAttr(l.Name, v)
	case LocChild:
		e.AppendChild(xmltree.TextElem(l.Name, v))
	default:
		e.PrependChild(xmltree.NewText(v))
	}
}

// Level is one step of a View's hierarchy. Every level except the last
// groups records by KeyField, carrying the group's value at KeyLoc; the
// last level is the record element itself.
type Level struct {
	Element  string
	KeyField string // empty only on the record (last) level and the root
	KeyLoc   Loc
}

// FieldDef declares a record field stored at the record element.
type FieldDef struct {
	Name  string
	Loc   Loc
	Multi bool // multi-valued field (repeated child elements)
}

// View lays out records as a tree. Levels[0] is the document element;
// the final level is the record element. Fields list the values stored
// at the record element; fields used as KeyField of a level live at that
// level instead.
type View struct {
	Levels []Level
	Fields []FieldDef
}

// RecordPath returns the name path from the document element to the
// record element, e.g. "db/book" or "db/publisher/editor/book".
func (v View) RecordPath() string {
	names := make([]string, len(v.Levels))
	for i, l := range v.Levels {
		names[i] = l.Element
	}
	return strings.Join(names, "/")
}

// fieldNames returns all field names carried by the view (grouping keys
// + record fields), sorted.
func (v View) fieldNames() []string {
	set := make(map[string]bool)
	for _, l := range v.Levels[:len(v.Levels)-1] {
		if l.KeyField != "" {
			set[l.KeyField] = true
		}
	}
	for _, f := range v.Fields {
		set[f.Name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fieldLevel locates a field: the level index where it lives (len-1 for
// record fields) and its Loc. ok is false for unknown fields.
func (v View) fieldLevel(name string) (level int, loc Loc, multi bool, ok bool) {
	for i, l := range v.Levels {
		if l.KeyField == name {
			return i, l.KeyLoc, false, true
		}
	}
	for _, f := range v.Fields {
		if f.Name == name {
			return len(v.Levels) - 1, f.Loc, f.Multi, true
		}
	}
	return 0, Loc{}, false, false
}

// fieldByRelPath finds the field whose record-level location renders to
// the given relative path (used to map query selectors back to fields).
// Only record-level fields and the record level itself participate:
// source queries address the *source* layout.
func (v View) fieldByRelPath(rel string) (FieldDef, bool) {
	for _, f := range v.Fields {
		if f.Loc.RelPath() == rel {
			return f, true
		}
	}
	return FieldDef{}, false
}

// Validate checks structural sanity: at least one level, grouping levels
// have key fields with usable locations, no duplicate field names, and
// key fields don't collide with record fields.
func (v View) Validate() error {
	if len(v.Levels) == 0 {
		return fmt.Errorf("rewrite: view has no levels")
	}
	for i, l := range v.Levels {
		if l.Element == "" {
			return fmt.Errorf("rewrite: level %d has no element name", i)
		}
		isLast := i == len(v.Levels)-1
		if !isLast && i > 0 && l.KeyField == "" {
			return fmt.Errorf("rewrite: grouping level %q needs a key field", l.Element)
		}
		if isLast && l.KeyField != "" {
			return fmt.Errorf("rewrite: record level %q must not group", l.Element)
		}
		if l.KeyField != "" && l.KeyLoc.Kind == LocText && l.Element == "" {
			return fmt.Errorf("rewrite: level %d: text key on unnamed element", i)
		}
	}
	seen := make(map[string]bool)
	for _, l := range v.Levels {
		if l.KeyField == "" {
			continue
		}
		if seen[l.KeyField] {
			return fmt.Errorf("rewrite: field %q used twice", l.KeyField)
		}
		seen[l.KeyField] = true
	}
	textFields := 0
	for _, f := range v.Fields {
		if seen[f.Name] {
			return fmt.Errorf("rewrite: field %q used twice", f.Name)
		}
		seen[f.Name] = true
		if f.Loc.Kind == LocText {
			if f.Multi {
				return fmt.Errorf("rewrite: text field %q cannot be multi-valued", f.Name)
			}
			textFields++
		}
	}
	if textFields > 1 {
		return fmt.Errorf("rewrite: at most one text field per record")
	}
	return nil
}

// Mapping relates two layouts of the same record type.
type Mapping struct {
	Name   string
	Source View
	Target View
}

// Validate checks both views and their field compatibility: every target
// field must exist in the source (the transformation cannot invent data).
func (m Mapping) Validate() error {
	if err := m.Source.Validate(); err != nil {
		return fmt.Errorf("source view: %w", err)
	}
	if err := m.Target.Validate(); err != nil {
		return fmt.Errorf("target view: %w", err)
	}
	src := make(map[string]bool)
	for _, n := range m.Source.fieldNames() {
		src[n] = true
	}
	for _, n := range m.Target.fieldNames() {
		if !src[n] {
			return fmt.Errorf("rewrite: target field %q not present in source", n)
		}
	}
	return nil
}

// Invert swaps source and target. Useful for round-trip testing and for
// transforming re-organized documents back.
func (m Mapping) Invert() Mapping {
	return Mapping{Name: m.Name + "-inverted", Source: m.Target, Target: m.Source}
}

// PublicationsMapping returns Figure1Mapping extended with the price
// field carried by the synthetic publications dataset, so that
// re-organization is lossless for that workload and every identity
// query stays rewritable.
func PublicationsMapping() Mapping {
	m := Figure1Mapping()
	price := FieldDef{Name: "price", Loc: Loc{Kind: LocChild, Name: "price"}}
	m.Name = "figure1+price"
	m.Source.Fields = append(m.Source.Fields, price)
	m.Target.Fields = append(m.Target.Fields, price)
	return m
}

// Figure1Mapping returns the mapping of the paper's figure 1: flat book
// records (db1.xml) versus a publisher/editor-grouped layout in the
// spirit of db2.xml. Re-organizing with this mapping also de-duplicates
// the publisher values of the editor → publisher FD, exactly the effect
// the paper warns about.
func Figure1Mapping() Mapping {
	return Mapping{
		Name: "figure1",
		Source: View{
			Levels: []Level{{Element: "db"}, {Element: "book"}},
			Fields: []FieldDef{
				{Name: "publisher", Loc: Loc{Kind: LocAttr, Name: "publisher"}},
				{Name: "title", Loc: Loc{Kind: LocChild, Name: "title"}},
				{Name: "editor", Loc: Loc{Kind: LocChild, Name: "editor"}},
				{Name: "year", Loc: Loc{Kind: LocChild, Name: "year"}},
				{Name: "author", Loc: Loc{Kind: LocChild, Name: "author"}, Multi: true},
			},
		},
		Target: View{
			Levels: []Level{
				{Element: "db"},
				{Element: "publisher", KeyField: "publisher", KeyLoc: Loc{Kind: LocAttr, Name: "name"}},
				{Element: "editor", KeyField: "editor", KeyLoc: Loc{Kind: LocAttr, Name: "name"}},
				{Element: "book"},
			},
			Fields: []FieldDef{
				{Name: "title", Loc: Loc{Kind: LocChild, Name: "title"}},
				{Name: "year", Loc: Loc{Kind: LocChild, Name: "year"}},
				{Name: "author", Loc: Loc{Kind: LocChild, Name: "author"}, Multi: true},
			},
		},
	}
}
