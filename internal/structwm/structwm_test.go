package structwm

import (
	"math/rand"
	"testing"

	"wmxml/internal/attack"
	"wmxml/internal/datagen"
	"wmxml/internal/rewrite"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

func pubCfg(markSeed string) Config {
	return Config{
		Key:     []byte("struct-key"),
		Mark:    wmark.Random(markSeed, 24),
		Scope:   "db/book",
		KeyPath: "title",
		Child:   "author",
	}
}

func TestStructRoundTrip(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 400, Seed: 1})
	cfg := pubCfg("m1")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if er.Candidates == 0 || er.Carriers == 0 {
		t.Fatalf("no bandwidth: %+v", er)
	}
	dr, err := Detect(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detection.Detected || dr.Detection.MatchFraction != 1.0 {
		t.Errorf("self-detection: %+v", dr.Detection)
	}
}

func TestStructEmbedOnlyReorders(t *testing.T) {
	// Embedding must not change any value, any count, or any content —
	// only sibling order.
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Seed: 2})
	doc := ds.Doc.Clone()
	er, err := Embed(doc, pubCfg("m2"))
	if err != nil {
		t.Fatal(err)
	}
	if er.Swapped == 0 {
		t.Fatalf("no swaps performed; test vacuous")
	}
	if !xmltree.Equal(ds.Doc, doc, xmltree.CompareOptions{IgnoreChildOrder: true}) {
		t.Errorf("embedding changed content, not just order")
	}
	if xmltree.Equal(ds.Doc, doc, xmltree.CompareOptions{}) {
		t.Errorf("embedding changed nothing")
	}
}

func TestStructWrongKey(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 400, Seed: 3})
	cfg := pubCfg("m3")
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, cfg); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Key = []byte("not-the-key")
	dr, err := Detect(doc, bad)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detection.Detected {
		t.Errorf("wrong key detected: %+v", dr.Detection)
	}
}

func TestStructSurvivesValueAlterationOfOtherFields(t *testing.T) {
	// The strength of the structural channel: heavy alteration of other
	// fields (years, prices, publishers) cannot touch it. We alter
	// everything EXCEPT authors by hand.
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Seed: 4})
	cfg := pubCfg("m4")
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, cfg); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	xmltree.WalkElements(doc, func(e *xmltree.Node) {
		switch e.Name {
		case "year", "price", "editor":
			e.SetText("altered-" + e.Text())
		case "book":
			if r.Intn(2) == 0 {
				e.SetAttr("publisher", "altered")
			}
		}
	})
	dr, err := Detect(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detection.Detected || dr.Detection.MatchFraction != 1.0 {
		t.Errorf("structural mark damaged by value alteration: %+v", dr.Detection)
	}
}

func TestStructDiesUnderReorder(t *testing.T) {
	// The weakness: the re-ordering attack erases the channel for free.
	ds := datagen.Publications(datagen.PubConfig{Books: 400, Seed: 5})
	cfg := pubCfg("m5")
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, cfg); err != nil {
		t.Fatal(err)
	}
	shuffled, err := (attack.Reorder{}).Apply(doc, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Detect(shuffled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detection.Detected {
		t.Errorf("structural mark survived reorder: match=%.3f", dr.Detection.MatchFraction)
	}
	if dr.Detection.MatchFraction < 0.3 || dr.Detection.MatchFraction > 0.75 {
		t.Errorf("match after reorder = %.3f, expected near chance", dr.Detection.MatchFraction)
	}
}

func TestStructSurvivesOrderPreservingReorganization(t *testing.T) {
	// Re-organization through a mapping preserves list order within each
	// record, and identities are key-based — so the structural mark
	// survives where the positional baseline would not.
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Seed: 7})
	cfg := pubCfg("m7")
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, cfg); err != nil {
		t.Fatal(err)
	}
	reorg, err := rewrite.Transform(doc, rewrite.PublicationsMapping())
	if err != nil {
		t.Fatal(err)
	}
	// In the new layout the record path changed; detection uses the new
	// scope.
	cfg2 := cfg
	cfg2.Scope = "db/publisher/editor/book"
	dr, err := Detect(reorg, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detection.Detected || dr.Detection.MatchFraction != 1.0 {
		t.Errorf("structural mark lost under order-preserving reorganization: %+v", dr.Detection)
	}
}

func TestStructConfigValidation(t *testing.T) {
	doc := xmltree.MustParseString(`<db/>`)
	if _, err := Embed(doc, Config{}); err == nil {
		t.Errorf("empty config accepted")
	}
	if _, err := Embed(doc, Config{Key: []byte("k"), Mark: wmark.Bits{1}}); err == nil {
		t.Errorf("missing scope accepted")
	}
	cfg := pubCfg("x")
	cfg.KeyPath = "[broken"
	if _, err := Embed(datagen.Figure1DB1(), cfg); err == nil {
		t.Errorf("broken key path accepted")
	}
}

func TestStructSkipsUnusableRecords(t *testing.T) {
	doc := xmltree.MustParseString(`<db>
	  <book><title>A</title><author>Same</author><author>Same</author></book>
	  <book><title>B</title><author>Only</author></book>
	  <book><author>NoKey</author><author>Two</author></book>
	  <book><title>C</title><author>Alpha</author><author>Beta</author></book>
	</db>`)
	cfg := pubCfg("skip")
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only book C has a key AND two distinct authors.
	if er.Candidates != 1 {
		t.Errorf("candidates = %d, want 1", er.Candidates)
	}
}

func TestStructDeterministicBit(t *testing.T) {
	// Embedding twice yields the same order (idempotence).
	ds := datagen.Publications(datagen.PubConfig{Books: 100, Seed: 8})
	cfg := pubCfg("m8")
	d1 := ds.Doc.Clone()
	if _, err := Embed(d1, cfg); err != nil {
		t.Fatal(err)
	}
	d2 := d1.Clone()
	er, err := Embed(d2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if er.Swapped != 0 {
		t.Errorf("re-embedding swapped %d pairs; not idempotent", er.Swapped)
	}
	if !xmltree.Equal(d1, d2, xmltree.CompareOptions{}) {
		t.Errorf("re-embedding changed the document")
	}
}
