// Package structwm implements the *structure-unit* watermark channel.
//
// Paper §2.2: "Both the data elements and structure units in an XML
// document could be used to embed watermarks." The main system
// (internal/core) embeds into data elements (values); this package
// embeds into structure: the relative order of a record's multi-valued
// children. For a record with at least two distinct values of a
// designated child (e.g. a book's authors), the bit is carried by
// whether the lexicographically smallest value precedes the largest in
// document order (bit 0) or follows it (bit 1). Embedding swaps the two
// children when needed; nothing about the values changes.
//
// The channel's trade-offs are the reason WmXML defaults to value
// embedding, and experiment A1 measures them: sibling order is free
// bandwidth and invisible to value-based usability templates, but it is
// erased by the re-ordering attack (which costs the attacker nothing on
// order-insensitive data) — whereas it survives value alteration of
// other fields untouched. Identities are still semantic (the record
// key), so mere re-organization that preserves list order does not
// break detection.
package structwm

import (
	"fmt"
	"strings"

	"wmxml/internal/semantics"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// Config parameterizes the structural channel.
type Config struct {
	// Key is the secret key.
	Key []byte
	// Mark is the watermark.
	Mark wmark.Bits
	// Gamma is the selection ratio (default 1: structure bandwidth is
	// scarce, so default to using all of it).
	Gamma int
	// Scope is the record set, e.g. "db/book".
	Scope string
	// KeyPath identifies records within the scope, e.g. "title".
	KeyPath string
	// Child is the multi-valued child carrying the order bit, e.g.
	// "author".
	Child string
	// Tau is the detection threshold (default 0.85).
	Tau float64
	// MinCoverage is the minimum voted-bit coverage (default 0.5).
	MinCoverage float64
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Key) == 0 {
		return c, fmt.Errorf("structwm: secret key is required")
	}
	if len(c.Mark) == 0 {
		return c, fmt.Errorf("structwm: watermark is required")
	}
	if c.Scope == "" || c.KeyPath == "" || c.Child == "" {
		return c, fmt.Errorf("structwm: Scope, KeyPath and Child are required")
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.Tau == 0 {
		c.Tau = 0.85
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 0.5
	}
	return c, nil
}

// Result reports an embed or detect pass.
type Result struct {
	// Candidates is the number of records with usable order bandwidth
	// (>= 2 distinct child values).
	Candidates int
	// Carriers is the number of selected records.
	Carriers int
	// Swapped is the number of child swaps performed (embed only).
	Swapped int
	// Detection holds the score for Detect calls.
	Detection wmark.Result
}

// orderUnit is one record's order-bandwidth: the two extreme child
// elements and the record identity.
type orderUnit struct {
	id       string
	min, max *xmltree.Node
}

// enumerate finds the order units of the document.
func enumerate(doc *xmltree.Node, cfg Config) ([]orderUnit, error) {
	insts, err := semantics.Instances(doc, cfg.Scope)
	if err != nil {
		return nil, err
	}
	keyQ, err := xpath.Compile(cfg.KeyPath)
	if err != nil {
		return nil, fmt.Errorf("structwm: key path %q: %w", cfg.KeyPath, err)
	}
	var units []orderUnit
	for _, inst := range insts {
		kv, ok := keyQ.SelectFirst(inst)
		if !ok || strings.TrimSpace(kv.Value()) == "" {
			continue
		}
		kids := inst.ChildElementsNamed(cfg.Child)
		if len(kids) < 2 {
			continue
		}
		min, max := kids[0], kids[0]
		for _, k := range kids[1:] {
			if k.Text() < min.Text() {
				min = k
			}
			if k.Text() > max.Text() {
				max = k
			}
		}
		if min.Text() == max.Text() {
			continue // all values equal: no order information possible
		}
		// The identity is purely semantic — child tag plus record key —
		// never the physical scope path, which legitimately changes
		// under re-organization.
		units = append(units, orderUnit{
			id:  "struct\x1f" + cfg.Child + "\x1f" + kv.Value(),
			min: min, max: max,
		})
	}
	return units, nil
}

// readBit reads the order bit of a unit: 1 when the maximum value
// precedes the minimum.
func readBit(u orderUnit) uint8 {
	if u.max.Index() < u.min.Index() {
		return 1
	}
	return 0
}

// writeBit sets the order bit by swapping the two extreme children in
// place (their positions exchange; all other siblings stay put). It
// reports whether a swap happened.
func writeBit(u orderUnit, bit uint8) bool {
	if readBit(u) == bit {
		return false
	}
	parent := u.min.Parent
	i, j := u.min.Index(), u.max.Index()
	parent.Children[i], parent.Children[j] = parent.Children[j], parent.Children[i]
	return true
}

// Embed inserts the watermark into the document's sibling order.
func Embed(doc *xmltree.Node, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sel, err := wmark.NewSelector(cfg.Key, cfg.Gamma, len(cfg.Mark), 1)
	if err != nil {
		return nil, err
	}
	units, err := enumerate(doc, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Candidates: len(units)}
	for _, u := range units {
		if !sel.Selected(u.id) {
			continue
		}
		res.Carriers++
		if writeBit(u, cfg.Mark[sel.BitIndex(u.id)]) {
			res.Swapped++
		}
	}
	return res, nil
}

// Detect reads the watermark back from the sibling order.
func Detect(doc *xmltree.Node, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sel, err := wmark.NewSelector(cfg.Key, cfg.Gamma, len(cfg.Mark), 1)
	if err != nil {
		return nil, err
	}
	units, err := enumerate(doc, cfg)
	if err != nil {
		return nil, err
	}
	votes := wmark.NewVotes(len(cfg.Mark))
	res := &Result{Candidates: len(units)}
	for _, u := range units {
		if !sel.Selected(u.id) {
			continue
		}
		res.Carriers++
		votes.Add(sel.BitIndex(u.id), readBit(u))
	}
	res.Detection = votes.Score(cfg.Mark, cfg.Tau, cfg.MinCoverage)
	return res, nil
}
