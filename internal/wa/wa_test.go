package wa

import (
	"encoding/base64"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"wmxml/internal/schema"
)

func TestNumericEmbedExtract(t *testing.T) {
	alg := Numeric{}
	cases := []struct {
		value string
		bit   uint8
		pos   int
	}{
		{"1998", 1, 0},
		{"1998", 0, 0},
		{"1998", 1, 3},
		{"55.50", 1, 1},
		{"55.50", 0, 1},
		{"-42", 1, 2},
		{"0", 1, 0},
		{"0.001", 1, 0},
		{"123456789", 0, 5},
	}
	for _, tc := range cases {
		out, err := alg.Embed(tc.value, tc.bit, Params{BitPosition: tc.pos})
		if err != nil {
			t.Errorf("Embed(%q,%d,%d): %v", tc.value, tc.bit, tc.pos, err)
			continue
		}
		got, ok := alg.Extract(out, Params{BitPosition: tc.pos})
		if !ok || got != tc.bit {
			t.Errorf("Extract(Embed(%q,%d,%d)=%q) = %d,%v", tc.value, tc.bit, tc.pos, out, got, ok)
		}
	}
}

func TestNumericPreservesShape(t *testing.T) {
	alg := Numeric{}
	out, err := alg.Embed("55.50", 1, Params{BitPosition: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ".") || len(strings.SplitN(out, ".", 2)[1]) != 2 {
		t.Errorf("fraction shape lost: %q", out)
	}
	out2, err := alg.Embed("-7", 0, Params{BitPosition: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out2, "-") {
		t.Errorf("sign lost: %q", out2)
	}
}

func TestNumericPerturbationBounded(t *testing.T) {
	// With xi=4 positions on an integer, the change is < 2^4 = 16.
	alg := Numeric{}
	for v := int64(100); v < 200; v++ {
		for pos := 0; pos < 4; pos++ {
			for _, bit := range []uint8{0, 1} {
				s := strconv.FormatInt(v, 10)
				out, err := alg.Embed(s, bit, Params{BitPosition: pos})
				if err != nil {
					t.Fatal(err)
				}
				got, _ := strconv.ParseInt(out, 10, 64)
				if got < v-16 || got > v+16 {
					t.Errorf("Embed(%d, bit %d, pos %d) = %d: change too large", v, bit, pos, got)
				}
			}
		}
	}
}

func TestNumericIdempotent(t *testing.T) {
	alg := Numeric{}
	out1, _ := alg.Embed("1998", 1, Params{BitPosition: 2})
	out2, _ := alg.Embed(out1, 1, Params{BitPosition: 2})
	if out1 != out2 {
		t.Errorf("not idempotent: %q -> %q", out1, out2)
	}
}

func TestNumericRejects(t *testing.T) {
	alg := Numeric{}
	for _, v := range []string{"", "abc", "1.2.3", "1e5", "12345678901234567890", "-", "3."} {
		if alg.CanEmbed(v) {
			t.Errorf("CanEmbed(%q) = true", v)
		}
		if _, err := alg.Embed(v, 1, Params{}); err == nil {
			t.Errorf("Embed(%q) succeeded", v)
		}
		if _, ok := alg.Extract(v, Params{}); ok {
			t.Errorf("Extract(%q) succeeded", v)
		}
	}
}

func TestNumericQuickRoundTrip(t *testing.T) {
	f := func(v int32, bit bool, pos uint8) bool {
		alg := Numeric{}
		b := uint8(0)
		if bit {
			b = 1
		}
		p := Params{BitPosition: int(pos % 8)}
		out, err := alg.Embed(strconv.FormatInt(int64(v), 10), b, p)
		if err != nil {
			return false
		}
		got, ok := alg.Extract(out, p)
		return ok && got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("numeric round-trip property: %v", err)
	}
}

func TestNumericQuickDecimalShape(t *testing.T) {
	f := func(units uint16, cents uint8, bit bool, pos uint8) bool {
		alg := Numeric{}
		val := strconv.Itoa(int(units)) + "." + twoDigits(int(cents)%100)
		b := uint8(0)
		if bit {
			b = 1
		}
		p := Params{BitPosition: int(pos % 6)}
		out, err := alg.Embed(val, b, p)
		if err != nil {
			return false
		}
		parts := strings.SplitN(out, ".", 2)
		if len(parts) != 2 || len(parts[1]) != 2 {
			return false
		}
		got, ok := alg.Extract(out, p)
		return ok && got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("decimal shape property: %v", err)
	}
}

func twoDigits(n int) string {
	if n < 10 {
		return "0" + strconv.Itoa(n)
	}
	return strconv.Itoa(n)
}

func TestBinaryEmbedExtract(t *testing.T) {
	alg := Binary{}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	val := base64.StdEncoding.EncodeToString(payload)
	for pos := 0; pos < 100; pos += 13 {
		for _, bit := range []uint8{0, 1} {
			out, err := alg.Embed(val, bit, Params{BitPosition: pos})
			if err != nil {
				t.Fatalf("Embed: %v", err)
			}
			got, ok := alg.Extract(out, Params{BitPosition: pos})
			if !ok || got != bit {
				t.Errorf("pos %d bit %d: got %d,%v", pos, bit, got, ok)
			}
			// Only one byte may change, and only its LSB.
			outRaw, _ := base64.StdEncoding.DecodeString(out)
			changed := 0
			for i := range payload {
				if outRaw[i] != payload[i] {
					changed++
					if outRaw[i]^payload[i] != 1 {
						t.Errorf("pos %d: non-LSB change at byte %d", pos, i)
					}
				}
			}
			if changed > 1 {
				t.Errorf("pos %d: %d bytes changed", pos, changed)
			}
		}
	}
}

func TestBinaryRejects(t *testing.T) {
	alg := Binary{}
	for _, v := range []string{"", "!!!not-base64!!!", "===="} {
		if alg.CanEmbed(v) {
			t.Errorf("CanEmbed(%q) = true", v)
		}
		if _, err := alg.Embed(v, 1, Params{}); err == nil {
			t.Errorf("Embed(%q) succeeded", v)
		}
	}
}

func TestTextEmbedExtract(t *testing.T) {
	alg := Text{}
	cases := []string{"stonebraker", "Database Design", "a b c", "x1y2"}
	for _, v := range cases {
		for pos := 0; pos < 5; pos++ {
			for _, bit := range []uint8{0, 1} {
				out, err := alg.Embed(v, bit, Params{BitPosition: pos})
				if err != nil {
					t.Fatalf("Embed(%q): %v", v, err)
				}
				got, ok := alg.Extract(out, Params{BitPosition: pos})
				if !ok || got != bit {
					t.Errorf("Embed(%q, bit %d, pos %d) = %q; Extract = %d,%v", v, bit, pos, out, got, ok)
				}
				if strings.ToLower(out) != strings.ToLower(v) {
					t.Errorf("text content changed beyond case: %q -> %q", v, out)
				}
			}
		}
	}
}

func TestTextRejects(t *testing.T) {
	alg := Text{}
	for _, v := range []string{"", "12345", "!!!", "   "} {
		if alg.CanEmbed(v) {
			t.Errorf("CanEmbed(%q) = true", v)
		}
		if _, err := alg.Embed(v, 1, Params{}); err == nil {
			t.Errorf("Embed(%q) succeeded", v)
		}
		if _, ok := alg.Extract(v, Params{}); ok {
			t.Errorf("Extract(%q) ok", v)
		}
	}
}

func TestForType(t *testing.T) {
	cases := []struct {
		dt   schema.DataType
		want string
	}{
		{schema.TypeInteger, "numeric-lsb"},
		{schema.TypeDecimal, "numeric-lsb"},
		{schema.TypeImage, "binary-lsb"},
		{schema.TypeString, "text-case"},
	}
	for _, tc := range cases {
		alg := ForType(tc.dt)
		if alg == nil || alg.Name() != tc.want {
			t.Errorf("ForType(%v) = %v, want %s", tc.dt, alg, tc.want)
		}
	}
	if ForType(schema.TypeNone) != nil {
		t.Errorf("ForType(none) should be nil")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"numeric-lsb", "binary-lsb", "text-case"} {
		alg, err := ByName(name)
		if err != nil || alg.Name() != name {
			t.Errorf("ByName(%q): %v, %v", name, alg, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Errorf("unknown name accepted")
	}
}

func TestErrNotEmbeddableMessage(t *testing.T) {
	err := ErrNotEmbeddable{Algo: "numeric-lsb", Value: strings.Repeat("x", 100)}
	if len(err.Error()) > 120 {
		t.Errorf("error message not clipped: %q", err.Error())
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64, bit bool, pos uint16) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(128)
		raw := make([]byte, n)
		rr.Read(raw)
		val := base64.StdEncoding.EncodeToString(raw)
		b := uint8(0)
		if bit {
			b = 1
		}
		alg := Binary{}
		p := Params{BitPosition: int(pos)}
		out, err := alg.Embed(val, b, p)
		if err != nil {
			return false
		}
		got, ok := alg.Extract(out, p)
		return ok && got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Errorf("binary round-trip property: %v", err)
	}
}
