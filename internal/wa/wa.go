// Package wa implements the plug-in watermark embedding algorithms of
// WmXML — the boxes labelled WA1, WA2, WA3 in the paper's figure 4:
// "As XML could contain various types of data, the system prepares
// various plug-in watermarking algorithms for different data types. …
// The data types currently supported by the system include numeric data
// and images."
//
// Each Algorithm embeds a single bit into a single string value and
// extracts it back. Which value carries which bit, and at which low-order
// position, is decided by the keyed machinery in internal/wmark; the
// algorithms here are deliberately key-oblivious so they can be swapped
// per data type.
package wa

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"wmxml/internal/schema"
)

// Params carries the per-value embedding parameters chosen by the keyed
// selector.
type Params struct {
	// BitPosition is the low-order position that carries the bit
	// (Agrawal–Kiernan's keyed choice among xi candidate positions). Its
	// interpretation is algorithm-specific: binary bit index for numbers,
	// byte index for binary payloads.
	BitPosition int
}

// Algorithm is one plug-in embedding scheme.
type Algorithm interface {
	// Name identifies the algorithm in reports and registries.
	Name() string
	// CanEmbed reports whether the value is in the algorithm's domain.
	CanEmbed(value string) bool
	// Embed returns the value with the bit embedded at the parameterized
	// position. Embedding must be idempotent: embedding the same bit
	// twice yields the same value.
	Embed(value string, bit uint8, p Params) (string, error)
	// Extract reads the embedded bit back. ok is false when the value
	// left the algorithm's domain (e.g. a numeric value was replaced by
	// text).
	Extract(value string, p Params) (bit uint8, ok bool)
}

// ErrNotEmbeddable is returned by Embed when CanEmbed is false.
type ErrNotEmbeddable struct {
	Algo  string
	Value string
}

func (e ErrNotEmbeddable) Error() string {
	v := e.Value
	if len(v) > 32 {
		v = v[:29] + "..."
	}
	return fmt.Sprintf("wa: %s cannot embed into %q", e.Algo, v)
}

// ---------------------------------------------------------------------
// Numeric algorithm
// ---------------------------------------------------------------------

// Numeric embeds the bit into a low-order binary bit of a decimal value,
// preserving sign, integer/fraction shape and the number of fraction
// digits, so that a watermarked price still looks like a price.
//
// For a value with d fraction digits, the value is scaled to an integer
// by 10^d, the binary bit at BitPosition is set to the mark bit, and the
// result is scaled back and reformatted with exactly d fraction digits.
type Numeric struct{}

// Name implements Algorithm.
func (Numeric) Name() string { return "numeric-lsb" }

// CanEmbed implements Algorithm: any decimal number.
func (Numeric) CanEmbed(value string) bool {
	_, _, _, err := splitNumber(value)
	return err == nil
}

// Embed implements Algorithm.
func (Numeric) Embed(value string, bit uint8, p Params) (string, error) {
	neg, scaled, digits, err := splitNumber(value)
	if err != nil {
		return "", ErrNotEmbeddable{Algo: "numeric-lsb", Value: value}
	}
	pos := uint(p.BitPosition)
	if pos > 30 {
		pos = pos % 31
	}
	if bit != 0 {
		scaled |= int64(1) << pos
	} else {
		scaled &^= int64(1) << pos
	}
	return formatNumber(neg, scaled, digits), nil
}

// Extract implements Algorithm.
func (Numeric) Extract(value string, p Params) (uint8, bool) {
	_, scaled, _, err := splitNumber(value)
	if err != nil {
		return 0, false
	}
	pos := uint(p.BitPosition)
	if pos > 30 {
		pos = pos % 31
	}
	return uint8((scaled >> pos) & 1), true
}

// splitNumber parses a plain decimal string into (negative, |value|
// scaled to an integer, fraction digits). Scientific notation is not
// treated as numeric here: rewriting it would change the value's shape,
// which is exactly what imperceptible marking must not do.
func splitNumber(s string) (neg bool, scaled int64, fracDigits int, err error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return false, 0, 0, fmt.Errorf("empty")
	}
	if t[0] == '-' {
		neg = true
		t = t[1:]
	} else if t[0] == '+' {
		t = t[1:]
	}
	if t == "" {
		return false, 0, 0, fmt.Errorf("sign only")
	}
	intPart := t
	fracPart := ""
	if i := strings.IndexByte(t, '.'); i >= 0 {
		intPart, fracPart = t[:i], t[i+1:]
		if fracPart == "" {
			return false, 0, 0, fmt.Errorf("trailing dot")
		}
	}
	if intPart == "" {
		intPart = "0"
	}
	for _, r := range intPart + fracPart {
		if r < '0' || r > '9' {
			return false, 0, 0, fmt.Errorf("non-digit %q", r)
		}
	}
	if len(intPart)+len(fracPart) > 17 {
		return false, 0, 0, fmt.Errorf("too many digits")
	}
	v, perr := strconv.ParseInt(intPart+fracPart, 10, 64)
	if perr != nil {
		return false, 0, 0, perr
	}
	return neg, v, len(fracPart), nil
}

func formatNumber(neg bool, scaled int64, fracDigits int) string {
	digits := strconv.FormatInt(scaled, 10)
	if fracDigits > 0 {
		for len(digits) <= fracDigits {
			digits = "0" + digits
		}
		digits = digits[:len(digits)-fracDigits] + "." + digits[len(digits)-fracDigits:]
	}
	if neg && scaled != 0 {
		digits = "-" + digits
	}
	return digits
}

// ---------------------------------------------------------------------
// Binary / image algorithm
// ---------------------------------------------------------------------

// Binary embeds the bit into the least significant bit of a keyed byte of
// a base64-encoded payload — the classic LSB channel over the opaque
// "image" values the paper's system supports.
type Binary struct{}

// Name implements Algorithm.
func (Binary) Name() string { return "binary-lsb" }

// CanEmbed implements Algorithm: non-empty valid base64.
func (Binary) CanEmbed(value string) bool {
	raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(value))
	return err == nil && len(raw) > 0
}

// Embed implements Algorithm.
func (b Binary) Embed(value string, bit uint8, p Params) (string, error) {
	raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(value))
	if err != nil || len(raw) == 0 {
		return "", ErrNotEmbeddable{Algo: b.Name(), Value: value}
	}
	idx := p.BitPosition % len(raw)
	if bit != 0 {
		raw[idx] |= 1
	} else {
		raw[idx] &^= 1
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

// Extract implements Algorithm.
func (b Binary) Extract(value string, p Params) (uint8, bool) {
	raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(value))
	if err != nil || len(raw) == 0 {
		return 0, false
	}
	idx := p.BitPosition % len(raw)
	return raw[idx] & 1, true
}

// ---------------------------------------------------------------------
// Text algorithm
// ---------------------------------------------------------------------

// Text embeds the bit in the case of a keyed alphabetic character:
// bit 1 → upper case, bit 0 → lower case. It is the demonstration
// plug-in for free-text values; its perceptibility is the trade-off the
// plug-in architecture exists to isolate (swap in a synonym-substitution
// algorithm without touching the encoder).
type Text struct{}

// Name implements Algorithm.
func (Text) Name() string { return "text-case" }

// CanEmbed implements Algorithm: the value contains at least one ASCII
// letter.
func (Text) CanEmbed(value string) bool {
	return letterAt(value, 0) >= 0
}

// letterAt returns the byte index of the n-th ASCII letter, or -1.
func letterAt(s string, n int) int {
	seen := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			if seen == n {
				return i
			}
			seen++
		}
	}
	return -1
}

func countLetters(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			n++
		}
	}
	return n
}

// Embed implements Algorithm.
func (t Text) Embed(value string, bit uint8, p Params) (string, error) {
	n := countLetters(value)
	if n == 0 {
		return "", ErrNotEmbeddable{Algo: t.Name(), Value: value}
	}
	idx := letterAt(value, p.BitPosition%n)
	b := []byte(value)
	c := b[idx]
	if bit != 0 {
		if c >= 'a' && c <= 'z' {
			b[idx] = c - 'a' + 'A'
		}
	} else {
		if c >= 'A' && c <= 'Z' {
			b[idx] = c - 'A' + 'a'
		}
	}
	return string(b), nil
}

// Extract implements Algorithm.
func (t Text) Extract(value string, p Params) (uint8, bool) {
	n := countLetters(value)
	if n == 0 {
		return 0, false
	}
	idx := letterAt(value, p.BitPosition%n)
	c := value[idx]
	if c >= 'A' && c <= 'Z' {
		return 1, true
	}
	return 0, true
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

// ForType returns the default algorithm for a schema data type, or nil
// for types without watermark bandwidth (TypeNone).
func ForType(t schema.DataType) Algorithm {
	switch t {
	case schema.TypeInteger, schema.TypeDecimal:
		return Numeric{}
	case schema.TypeImage:
		return Binary{}
	case schema.TypeString:
		return Text{}
	default:
		return nil
	}
}

// ByName resolves an algorithm by its registry name.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "numeric-lsb":
		return Numeric{}, nil
	case "binary-lsb":
		return Binary{}, nil
	case "text-case":
		return Text{}, nil
	default:
		return nil, fmt.Errorf("wa: unknown algorithm %q", name)
	}
}
