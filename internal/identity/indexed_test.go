package identity

import (
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/index"
)

// UnitsIndexed must enumerate exactly the units of Units — same IDs,
// same queries, same physical items — for both identity modes.
func TestUnitsIndexedEquivalence(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Editors: 20, Publishers: 5, Seed: 3})
	for _, mode := range []Mode{ModeSemantic, ModePositional} {
		b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: ds.Targets, Mode: mode})
		plain, prep, err := b.Units(ds.Doc)
		if err != nil {
			t.Fatal(err)
		}
		indexed, irep, err := b.UnitsIndexed(ds.Doc, index.New(ds.Doc))
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) == 0 || len(plain) != len(indexed) {
			t.Fatalf("mode %d: %d vs %d units", mode, len(plain), len(indexed))
		}
		if prep.Units != irep.Units || prep.PhysicalItems != irep.PhysicalItems || prep.FDGroups != irep.FDGroups {
			t.Fatalf("mode %d: reports differ: %+v vs %+v", mode, prep, irep)
		}
		for i := range plain {
			p, x := plain[i], indexed[i]
			if p.ID != x.ID || p.Query.String() != x.Query.String() || p.Type != x.Type {
				t.Fatalf("mode %d unit %d: %q/%q vs %q/%q", mode, i, p.ID, p.Query, x.ID, x.Query)
			}
			if len(p.Items) != len(x.Items) {
				t.Fatalf("mode %d unit %d: item counts differ", mode, i)
			}
			for j := range p.Items {
				if p.Items[j] != x.Items[j] {
					t.Fatalf("mode %d unit %d item %d: different physical items", mode, i, j)
				}
			}
		}
	}
}
