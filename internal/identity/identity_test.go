package identity

import (
	"strings"
	"testing"
	"testing/quick"

	"wmxml/internal/datagen"
	"wmxml/internal/schema"
	"wmxml/internal/semantics"
	"wmxml/internal/xmltree"
)

func pubDataset() *datagen.Dataset {
	return datagen.Publications(datagen.PubConfig{Books: 40, Editors: 6, Publishers: 3, Seed: 1})
}

func TestResolveTargetsExplicit(t *testing.T) {
	ds := pubDataset()
	b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: ds.Targets})
	targets, err := b.ResolveTargets()
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 {
		t.Fatalf("targets = %v", targets)
	}
	if targets[0].Scope != "db/book" || targets[0].Field != "year" || targets[0].Type != schema.TypeInteger {
		t.Errorf("target 0 = %+v", targets[0])
	}
	if targets[2].Field != "@publisher" || targets[2].Type != schema.TypeString {
		t.Errorf("target 2 = %+v", targets[2])
	}
}

func TestResolveTargetsErrors(t *testing.T) {
	ds := pubDataset()
	cases := []string{
		"db/book/nosuch",
		"db/nosuch/year",
		"book",
		"db/book/@missing",
		"db/book/author/year", // author is a leaf: scope resolution fails
	}
	for _, tgt := range cases {
		b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: []string{tgt}})
		if _, err := b.ResolveTargets(); err == nil {
			t.Errorf("target %q accepted", tgt)
		}
	}
}

func TestAutoTargets(t *testing.T) {
	ds := pubDataset()
	b := NewBuilder(ds.Schema, ds.Catalog, Options{})
	targets, err := b.ResolveTargets()
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, tgt := range targets {
		names[tgt.String()] = true
	}
	// The key (title) must never be a target; multi-valued author must be
	// excluded; year/price/editor/@publisher are usable.
	if names["db/book/title"] {
		t.Errorf("key proposed as watermark target")
	}
	if names["db/book/author"] {
		t.Errorf("multi-valued field proposed as target")
	}
	for _, want := range []string{"db/book/year", "db/book/price", "db/book/@publisher", "db/book/editor"} {
		if !names[want] {
			t.Errorf("auto targets missing %s; got %v", want, targets)
		}
	}
}

func TestSemanticUnits(t *testing.T) {
	ds := pubDataset()
	b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: []string{"db/book/year"}})
	units, rep, err := b.Units(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 40 {
		t.Fatalf("units = %d, want 40 (one per book)", len(units))
	}
	if rep.Units != 40 || rep.PhysicalItems != 40 {
		t.Errorf("report = %+v", rep)
	}
	// Every unit's query must resolve to exactly its item.
	for _, u := range units[:10] {
		items := u.Query.Select(ds.Doc)
		if len(items) != 1 {
			t.Fatalf("query %q resolved %d items", u.Query, len(items))
		}
		if items[0] != u.Items[0] {
			t.Errorf("query %q resolved a different item", u.Query)
		}
		if !strings.Contains(u.Query.String(), "[title=") {
			t.Errorf("identity query not key-based: %q", u.Query)
		}
	}
	// IDs are unique.
	seen := make(map[string]bool)
	for _, u := range units {
		if seen[u.ID] {
			t.Errorf("duplicate unit ID %q", u.ID)
		}
		seen[u.ID] = true
	}
}

func TestFDDependentGrouping(t *testing.T) {
	ds := pubDataset()
	b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: []string{"db/book/@publisher"}})
	units, rep, err := b.Units(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	// One unit per editor (grouping value), not per book.
	if len(units) > 6 {
		t.Errorf("units = %d, want <= 6 editors", len(units))
	}
	if rep.PhysicalItems != 40 {
		t.Errorf("physical items = %d, want 40", rep.PhysicalItems)
	}
	groups := 0
	for _, u := range units {
		if u.GroupValue == "" {
			t.Errorf("FD unit missing group value")
		}
		if !strings.Contains(u.Query.String(), "[editor=") {
			t.Errorf("FD identity not determinant-based: %q", u.Query)
		}
		if len(u.Items) >= 2 {
			groups++
			// All members must hold the same value (the FD guarantees it).
			v := u.Items[0].Value()
			for _, it := range u.Items {
				if it.Value() != v {
					t.Errorf("FD group %q members disagree: %q vs %q", u.GroupValue, v, it.Value())
				}
			}
		}
	}
	if groups == 0 {
		t.Errorf("no multi-member FD groups; dataset should have redundancy")
	}
	if rep.FDGroups != groups {
		t.Errorf("report FDGroups = %d, counted %d", rep.FDGroups, groups)
	}
}

func TestFDDeterminantGrouping(t *testing.T) {
	// editor is the determinant of editor -> @publisher: units for the
	// editor field group by the editor's own value.
	ds := pubDataset()
	b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: []string{"db/book/editor"}})
	units, _, err := b.Units(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) > 6 {
		t.Errorf("determinant units = %d, want <= 6 editors", len(units))
	}
	for _, u := range units {
		if !strings.HasPrefix(u.ID, "det\x1f") {
			t.Errorf("determinant unit ID kind = %q", u.ID)
		}
	}
}

func TestDisableFDsAblation(t *testing.T) {
	ds := pubDataset()
	b := NewBuilder(ds.Schema, ds.Catalog, Options{
		Targets: []string{"db/book/@publisher"}, DisableFDs: true})
	units, _, err := b.Units(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 40 {
		t.Errorf("FD-disabled units = %d, want 40 (per book)", len(units))
	}
	for _, u := range units {
		if u.GroupValue != "" {
			t.Errorf("FD grouping active despite DisableFDs")
		}
	}
}

func TestPositionalUnits(t *testing.T) {
	ds := pubDataset()
	b := NewBuilder(ds.Schema, ds.Catalog, Options{
		Targets: []string{"db/book/year"}, Mode: ModePositional})
	units, _, err := b.Units(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 40 {
		t.Fatalf("units = %d", len(units))
	}
	q := units[2].Query
	if !strings.Contains(q.String(), "book[3]") {
		t.Errorf("positional query = %q", q)
	}
	items := q.Select(ds.Doc)
	if len(items) != 1 || items[0] != units[2].Items[0] {
		t.Errorf("positional query resolution mismatch")
	}
}

func TestMissingKeySkipped(t *testing.T) {
	doc := xmltree.MustParseString(`<db><book><title>A</title><year>1999</year></book><book><year>2000</year></book></db>`)
	s := schema.Infer("t", doc)
	cat := semantics.Catalog{Keys: []semantics.Key{{Scope: "db/book", KeyPath: "title"}}}
	b := NewBuilder(s, cat, Options{Targets: []string{"db/book/year"}})
	units, rep, err := b.Units(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Errorf("units = %d, want 1", len(units))
	}
	if rep.Skipped["missing key value"] != 1 {
		t.Errorf("skipped = %v", rep.Skipped)
	}
}

func TestNoKeyForScope(t *testing.T) {
	ds := pubDataset()
	cat := semantics.Catalog{} // no keys at all
	b := NewBuilder(ds.Schema, cat, Options{Targets: []string{"db/book/year"}})
	units, rep, err := b.Units(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 0 {
		t.Errorf("units without key = %d", len(units))
	}
	found := false
	for k := range rep.Skipped {
		if strings.Contains(k, "no key") {
			found = true
		}
	}
	if !found {
		t.Errorf("no-key skip not reported: %v", rep.Skipped)
	}
}

func TestQuotingInIdentityQueries(t *testing.T) {
	doc := xmltree.MustParseString(`<db>
	  <book><title>O'Reilly Guide</title><year>2001</year></book>
	  <book><title>The "Best" Book</title><year>2002</year></book>
	  <book><title>Both ' and " inside</title><year>2003</year></book>
	</db>`)
	s := schema.Infer("t", doc)
	cat := semantics.Catalog{Keys: []semantics.Key{{Scope: "db/book", KeyPath: "title"}}}
	b := NewBuilder(s, cat, Options{Targets: []string{"db/book/year"}})
	units, rep, err := b.Units(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Two quotable titles; the both-quotes one is skipped.
	if len(units) != 2 {
		t.Fatalf("units = %d, want 2", len(units))
	}
	if rep.Skipped["unquotable value"] != 1 {
		t.Errorf("skipped = %v", rep.Skipped)
	}
	for _, u := range units {
		if got := u.Query.Select(doc); len(got) != 1 {
			t.Errorf("query %q resolved %d items", u.Query, len(got))
		}
	}
}

func TestNestedScopeUnits(t *testing.T) {
	// Records two levels deep: scope "catalog/publisher/book".
	ds := datagen.NestedPublications(datagen.NestedConfig{Books: 50, Publishers: 4, Seed: 9})
	b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: ds.Targets})
	units, rep, err := b.Units(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	// year + price per book.
	if len(units) != 100 {
		t.Fatalf("units = %d, want 100", len(units))
	}
	if rep.PhysicalItems != 100 {
		t.Errorf("physical items = %d", rep.PhysicalItems)
	}
	for _, u := range units[:10] {
		if !strings.HasPrefix(u.Query.String(), "/catalog/publisher/book[title=") {
			t.Errorf("nested identity query = %q", u.Query)
		}
		items := u.Query.Select(ds.Doc)
		if len(items) != 1 || items[0] != u.Items[0] {
			t.Errorf("nested query %q resolution mismatch (%d items)", u.Query, len(items))
		}
	}
}

func TestUnitIDStableAcrossReorder(t *testing.T) {
	// Semantic IDs must not change when the document is reordered.
	ds := pubDataset()
	b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: []string{"db/book/year"}})
	units1, _, err := b.Units(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse book order.
	cp := ds.Doc.Clone()
	root := cp.Root()
	kids := append([]*xmltree.Node(nil), root.Children...)
	root.RemoveChildren()
	for i := len(kids) - 1; i >= 0; i-- {
		root.AppendChild(kids[i])
	}
	units2, _, err := b.Units(cp)
	if err != nil {
		t.Fatal(err)
	}
	ids1 := make(map[string]bool)
	for _, u := range units1 {
		ids1[u.ID] = true
	}
	for _, u := range units2 {
		if !ids1[u.ID] {
			t.Fatalf("ID %q changed under reordering", u.ID)
		}
	}

	// Positional IDs, by contrast, shuffle.
	bp := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: []string{"db/book/year"}, Mode: ModePositional})
	p1, _, _ := bp.Units(ds.Doc)
	p2, _, _ := bp.Units(cp)
	same := 0
	for i := range p1 {
		if p1[i].Items[0].Value() == p2[i].Items[0].Value() {
			same++
		}
	}
	if same == len(p1) {
		t.Errorf("positional identities unaffected by reordering — ablation meaningless")
	}
}

func TestQuickUnitQueriesResolveExactly(t *testing.T) {
	// Property over random datasets: every enumerated unit's query
	// selects exactly the unit's items, no more, no fewer.
	f := func(seed int64, size uint8) bool {
		n := 10 + int(size)%80
		ds := datagen.Publications(datagen.PubConfig{Books: n, Seed: seed})
		b := NewBuilder(ds.Schema, ds.Catalog, Options{Targets: ds.Targets})
		units, _, err := b.Units(ds.Doc)
		if err != nil {
			return false
		}
		for _, u := range units {
			items := u.Query.Select(ds.Doc)
			if len(items) != len(u.Items) {
				return false
			}
			for i := range items {
				if items[i] != u.Items[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Errorf("unit-query resolution property: %v", err)
	}
}
