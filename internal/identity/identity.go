// Package identity constructs the identity queries at the heart of WmXML
// (paper §2.2–2.3).
//
// A watermark carrier must be addressable by something that survives
// re-organization, alteration and redundancy removal. WmXML's answer is a
// *query* built from the document's semantics:
//
//   - Keys differentiate instances (challenge A): the year of a book is
//     identified as db/book[title='Readings …']/year, not as "the 5th
//     child of the 1st book".
//   - Functional dependencies canonicalize redundancy (challenge C): with
//     editor → publisher, every publisher value in an editor's group is
//     the *same* logical datum, so the whole group shares one identity —
//     db/book[editor='Harrypotter']/@publisher — and therefore carries
//     the same watermark bit at the same position. Making the duplicates
//     identical (the redundancy-removal attack) then changes nothing.
//
// The package enumerates the document's watermark bandwidth as a list of
// Units: each Unit has a canonical identity string (the HMAC input for
// keyed selection), an identity query (what the user safeguards in Q),
// the physical items the unit currently resolves to, and the value type
// (which picks the embedding plug-in).
package identity

import (
	"fmt"
	"sort"
	"strings"

	"wmxml/internal/schema"
	"wmxml/internal/semantics"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// Mode selects how identities are constructed.
type Mode uint8

const (
	// ModeSemantic builds identities from keys and FDs (the WmXML
	// scheme).
	ModeSemantic Mode = iota
	// ModePositional builds identities from positional paths (the naive
	// scheme the paper argues against; kept as an ablation baseline for
	// the re-organization experiment).
	ModePositional
)

// Options configures identity construction.
type Options struct {
	// Targets are the value fields carrying watermark bandwidth, as name
	// paths like "db/book/year" or "db/book/@publisher" (paper: the user
	// "specify[s] the data elements with watermark capacity"). Empty
	// means: every typed leaf field under a keyed scope, minus key and
	// text-type fields used as keys.
	Targets []string
	// Mode selects semantic or positional identity construction.
	Mode Mode
	// DisableFDs turns off FD canonicalization (the E5 ablation: without
	// it, redundancy removal erases the mark).
	DisableFDs bool
}

// Unit is one unit of watermark bandwidth: a logical value with a
// persistent identity. A Unit may resolve to several physical items when
// an FD makes them duplicates of one another.
type Unit struct {
	// ID is the canonical identity string — the input to the keyed
	// selection HMACs. It must be stable across document re-organization
	// (it is derived from semantics, not structure).
	ID string
	// Query is the identity query addressing the unit's items.
	Query *xpath.Query
	// Items are the physical values currently backing the unit, resolved
	// against the document the unit was enumerated from.
	Items []xpath.Item
	// Type is the declared value type, selecting the embedding plug-in.
	Type schema.DataType
	// Scope, Field describe the unit's location (name path of the keyed
	// instance set and the relative field path).
	Scope, Field string
	// SelRel is the relative path whose value forms the query predicate
	// (the key path, the FD determinant, or the field itself for
	// determinant units). Empty for positional units.
	SelRel string
	// GroupValue is the FD grouping value when the unit is an FD
	// canonical group ("" otherwise).
	GroupValue string
}

// Instance returns the scope instance element owning the i-th item.
func (u Unit) Instance(i int) *xmltree.Node {
	if i < 0 || i >= len(u.Items) {
		return nil
	}
	it := u.Items[i]
	if it.IsAttr() {
		return it.Node
	}
	return it.Node.Parent
}

// Rebuild regenerates the unit's identity query from the *current* state
// of the document. The encoder calls this after embedding: marking a
// value that also serves as a selector (an FD determinant marked through
// a det-unit) changes the predicate value, and the paper's workflow
// generates Q after insertion ("the encoder embeds the watermark into
// the data and generates a set of identifying queries").
func (u Unit) Rebuild() (*xpath.Query, error) {
	if u.SelRel == "" {
		return u.Query, nil // positional units: structure unchanged by embedding
	}
	inst := u.Instance(0)
	if inst == nil {
		return nil, fmt.Errorf("identity: unit %q has no instance", u.ID)
	}
	selQ, err := xpath.Compile(u.SelRel)
	if err != nil {
		return nil, err
	}
	it, ok := selQ.SelectFirst(inst)
	if !ok {
		return nil, fmt.Errorf("identity: selector %q missing on instance of %q", u.SelRel, u.ID)
	}
	return buildIdentityQuery(u.Scope, u.SelRel, it.Value(), u.Field)
}

// RebuildWithValue is Rebuild with the selector's post-insertion value
// supplied by the caller instead of read from the document. The plan
// compiler uses it to precompute a unit's identity query for a payload
// it has not applied: it knows what the selector value *would* be under
// either bit choice without mutating the document.
func (u Unit) RebuildWithValue(selValue string) (*xpath.Query, error) {
	if u.SelRel == "" {
		return u.Query, nil
	}
	return buildIdentityQuery(u.Scope, u.SelRel, selValue, u.Field)
}

// Target is a parsed target field.
type Target struct {
	// Scope is the name path of the instance set, e.g. "db/book".
	Scope string
	// Field is the relative field path, e.g. "year" or "@publisher".
	Field string
	// Type is the field's declared value type.
	Type schema.DataType
}

// String renders the target as a name path.
func (t Target) String() string { return t.Scope + "/" + t.Field }

// Report describes the outcome of bandwidth enumeration, for the
// capacity experiment (E1) and for user diagnostics.
type Report struct {
	Targets []Target
	// Units is the usable bandwidth in units.
	Units int
	// FDGroups counts units that aggregate >= 2 physical items.
	FDGroups int
	// PhysicalItems counts all physical value items covered by units.
	PhysicalItems int
	// Skipped counts identifiable problems: instances without key values,
	// values not embeddable, quoting conflicts.
	Skipped map[string]int
}

// Builder enumerates watermark bandwidth for documents of one schema.
type Builder struct {
	schema  *schema.Schema
	catalog semantics.Catalog
	opts    Options
}

// NewBuilder creates a Builder. The schema provides structure and types;
// the catalog provides keys and FDs; opts selects targets and mode.
func NewBuilder(s *schema.Schema, cat semantics.Catalog, opts Options) *Builder {
	return &Builder{schema: s, catalog: cat, opts: opts}
}

// ResolveTargets determines the target fields: either parsing the
// configured ones or auto-deriving all usable fields. Duplicates are
// dropped (first occurrence wins): a repeated target would enumerate
// the same physical values twice — double-embedding sequentially and
// racing on shared nodes under the concurrent encoder.
func (b *Builder) ResolveTargets() ([]Target, error) {
	if len(b.opts.Targets) > 0 {
		out := make([]Target, 0, len(b.opts.Targets))
		seen := make(map[string]bool, len(b.opts.Targets))
		for _, t := range b.opts.Targets {
			tgt, err := b.parseTarget(t)
			if err != nil {
				return nil, err
			}
			if seen[tgt.String()] {
				continue
			}
			seen[tgt.String()] = true
			out = append(out, tgt)
		}
		return out, nil
	}
	return b.autoTargets()
}

func (b *Builder) parseTarget(t string) (Target, error) {
	t = strings.TrimPrefix(strings.TrimSpace(t), "/")
	i := strings.LastIndexByte(t, '/')
	if i <= 0 {
		return Target{}, fmt.Errorf("identity: target %q must be scope/field", t)
	}
	scope, field := t[:i], t[i+1:]
	typ, err := b.fieldType(scope, field)
	if err != nil {
		return Target{}, err
	}
	return Target{Scope: scope, Field: field, Type: typ}, nil
}

// fieldType resolves the declared type of a field under a scope.
func (b *Builder) fieldType(scope, field string) (schema.DataType, error) {
	segs := strings.Split(scope, "/")
	scopeElem := segs[len(segs)-1]
	decl := b.schema.Element(scopeElem)
	if decl == nil {
		return schema.TypeNone, fmt.Errorf("identity: scope element %q not in schema", scopeElem)
	}
	if strings.HasPrefix(field, "@") {
		ad, ok := decl.Attr(field[1:])
		if !ok {
			return schema.TypeNone, fmt.Errorf("identity: attribute %q not declared on %q", field, scopeElem)
		}
		return ad.Type, nil
	}
	if _, ok := decl.Child(field); !ok {
		return schema.TypeNone, fmt.Errorf("identity: element %q not declared under %q", field, scopeElem)
	}
	fd := b.schema.Element(field)
	if fd == nil {
		return schema.TypeNone, fmt.Errorf("identity: element %q not in schema", field)
	}
	if !fd.IsLeaf() {
		return schema.TypeNone, fmt.Errorf("identity: element %q is not a leaf", field)
	}
	return fd.Type, nil
}

// autoTargets derives targets from the schema: for every keyed scope,
// every single-valued leaf child and attribute with a usable type,
// except the key field itself.
func (b *Builder) autoTargets() ([]Target, error) {
	var out []Target
	seen := make(map[string]bool)
	add := func(t Target) {
		if !seen[t.String()] {
			seen[t.String()] = true
			out = append(out, t)
		}
	}
	for _, key := range b.catalog.Keys {
		segs := strings.Split(key.Scope, "/")
		decl := b.schema.Element(segs[len(segs)-1])
		if decl == nil {
			continue
		}
		for _, cd := range decl.Children {
			child := b.schema.Element(cd.Name)
			if child == nil || !child.IsLeaf() || child.Type == schema.TypeNone {
				continue
			}
			if cd.Name == key.KeyPath {
				continue // never mark the key: it is the identifier
			}
			if cd.MaxOccurs != 1 {
				continue // multi-valued children are not uniquely addressable by the key alone
			}
			add(Target{Scope: key.Scope, Field: cd.Name, Type: child.Type})
		}
		for _, ad := range decl.Attrs {
			if "@"+ad.Name == key.KeyPath {
				continue
			}
			add(Target{Scope: key.Scope, Field: "@" + ad.Name, Type: ad.Type})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

// Units enumerates the watermark bandwidth of a document.
func (b *Builder) Units(doc *xmltree.Node) ([]Unit, Report, error) {
	return b.UnitsIndexed(doc, nil)
}

// UnitsIndexed is Units with a shared document index accelerating scope
// enumeration (one rooted-path lookup per target instead of one tree
// walk). ix may be nil; the enumerated units are identical either way.
func (b *Builder) UnitsIndexed(doc *xmltree.Node, ix xpath.DocIndex) ([]Unit, Report, error) {
	rep := Report{Skipped: make(map[string]int)}
	targets, err := b.ResolveTargets()
	if err != nil {
		return nil, rep, err
	}
	rep.Targets = targets
	var units []Unit
	for _, tgt := range targets {
		var tu []Unit
		var err error
		if b.opts.Mode == ModePositional {
			tu, err = b.positionalUnits(doc, tgt, ix, &rep)
		} else {
			tu, err = b.semanticUnits(doc, tgt, ix, &rep)
		}
		if err != nil {
			return nil, rep, err
		}
		units = append(units, tu...)
	}
	rep.Units = len(units)
	for _, u := range units {
		rep.PhysicalItems += len(u.Items)
		if len(u.Items) >= 2 {
			rep.FDGroups++
		}
	}
	return units, rep, nil
}

// semanticUnits builds key/FD-based units for one target.
func (b *Builder) semanticUnits(doc *xmltree.Node, tgt Target, ix xpath.DocIndex, rep *Report) ([]Unit, error) {
	key, ok := b.catalog.KeyFor(tgt.Scope)
	if !ok {
		rep.Skipped["no key for scope "+tgt.Scope] += 1
		return nil, nil
	}
	insts, err := semantics.InstancesIndexed(doc, tgt.Scope, ix)
	if err != nil {
		return nil, err
	}
	keyQ, err := xpath.Compile(key.KeyPath)
	if err != nil {
		return nil, fmt.Errorf("identity: key path %q: %w", key.KeyPath, err)
	}
	fieldQ, err := xpath.Compile(tgt.Field)
	if err != nil {
		return nil, fmt.Errorf("identity: field %q: %w", tgt.Field, err)
	}

	// Determine the FD treatment of this field within the scope.
	var groupRel string // relative path whose value groups duplicates
	groupSelf := false
	if !b.opts.DisableFDs {
		for _, fd := range b.catalog.FDsFor(tgt.Scope) {
			if fd.Dependent == tgt.Field {
				groupRel = fd.Determinant
				break
			}
			if fd.Determinant == tgt.Field {
				groupRel = tgt.Field
				groupSelf = true
				break
			}
		}
	}

	if groupRel != "" {
		return b.fdUnits(insts, tgt, groupRel, groupSelf, fieldQ, rep)
	}

	var units []Unit
	for _, inst := range insts {
		kv, ok := keyQ.SelectFirst(inst)
		if !ok || strings.TrimSpace(kv.Value()) == "" {
			rep.Skipped["missing key value"]++
			continue
		}
		item, ok := fieldQ.SelectFirst(inst)
		if !ok {
			rep.Skipped["missing field "+tgt.Field]++
			continue
		}
		q, err := buildIdentityQuery(tgt.Scope, key.KeyPath, kv.Value(), tgt.Field)
		if err != nil {
			rep.Skipped["unquotable value"]++
			continue
		}
		units = append(units, Unit{
			ID:     canonicalID("key", tgt.Scope, tgt.Field, kv.Value()),
			Query:  q,
			Items:  []xpath.Item{item},
			Type:   tgt.Type,
			Scope:  tgt.Scope,
			Field:  tgt.Field,
			SelRel: key.KeyPath,
		})
	}
	return units, nil
}

// fdUnits groups instances by the grouping value and emits one unit per
// group.
func (b *Builder) fdUnits(insts []*xmltree.Node, tgt Target, groupRel string, groupSelf bool, fieldQ *xpath.Query, rep *Report) ([]Unit, error) {
	groupQ, err := xpath.Compile(groupRel)
	if err != nil {
		return nil, fmt.Errorf("identity: group path %q: %w", groupRel, err)
	}
	groups := make(map[string][]xpath.Item)
	for _, inst := range insts {
		gvItem, ok := groupQ.SelectFirst(inst)
		if !ok || strings.TrimSpace(gvItem.Value()) == "" {
			rep.Skipped["missing group value"]++
			continue
		}
		item, ok := fieldQ.SelectFirst(inst)
		if !ok {
			rep.Skipped["missing field "+tgt.Field]++
			continue
		}
		groups[gvItem.Value()] = append(groups[gvItem.Value()], item)
	}
	vals := make([]string, 0, len(groups))
	for v := range groups {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	kind := "fd"
	if groupSelf {
		kind = "det"
	}
	var units []Unit
	for _, v := range vals {
		q, err := buildIdentityQuery(tgt.Scope, groupRel, v, tgt.Field)
		if err != nil {
			rep.Skipped["unquotable value"]++
			continue
		}
		units = append(units, Unit{
			ID:         canonicalID(kind, tgt.Scope, tgt.Field, v),
			Query:      q,
			Items:      groups[v],
			Type:       tgt.Type,
			Scope:      tgt.Scope,
			Field:      tgt.Field,
			SelRel:     groupRel,
			GroupValue: v,
		})
	}
	return units, nil
}

// positionalUnits builds ordinal-based units (ablation baseline).
func (b *Builder) positionalUnits(doc *xmltree.Node, tgt Target, ix xpath.DocIndex, rep *Report) ([]Unit, error) {
	insts, err := semantics.InstancesIndexed(doc, tgt.Scope, ix)
	if err != nil {
		return nil, err
	}
	fieldQ, err := xpath.Compile(tgt.Field)
	if err != nil {
		return nil, err
	}
	var units []Unit
	for idx, inst := range insts {
		item, ok := fieldQ.SelectFirst(inst)
		if !ok {
			rep.Skipped["missing field "+tgt.Field]++
			continue
		}
		q, err := buildPositionalQuery(tgt.Scope, idx+1, tgt.Field)
		if err != nil {
			return nil, err
		}
		units = append(units, Unit{
			ID:    canonicalID("pos", tgt.Scope, tgt.Field, fmt.Sprintf("%d", idx+1)),
			Query: q,
			Items: []xpath.Item{item},
			Type:  tgt.Type,
			Scope: tgt.Scope,
			Field: tgt.Field,
		})
	}
	return units, nil
}

// canonicalID builds the HMAC input. The separator bytes cannot occur in
// name paths, so distinct (kind, scope, field, value) tuples cannot
// collide.
func canonicalID(kind, scope, field, value string) string {
	return kind + "\x1f" + scope + "\x1f" + field + "\x1f" + value
}

// buildIdentityQuery constructs /scope[selRel='selValue']/field as an AST
// (proper literal quoting included). It fails when the value contains
// both quote characters — XPath 1.0 has no escaping.
func buildIdentityQuery(scope, selRel, selValue, field string) (*xpath.Query, error) {
	if strings.Contains(selValue, "'") && strings.Contains(selValue, `"`) {
		return nil, fmt.Errorf("identity: value %q contains both quote kinds", selValue)
	}
	selPath, err := xpath.ParsePath(selRel)
	if err != nil {
		return nil, err
	}
	p, err := xpath.ParsePath("/" + scope)
	if err != nil {
		return nil, err
	}
	last := &p.Steps[len(p.Steps)-1]
	last.Predicates = append(last.Predicates, xpath.Binary{
		Op: "=",
		L:  xpath.PathExpr{Path: selPath},
		R:  xpath.String{Value: selValue},
	})
	fieldPath, err := xpath.ParsePath(field)
	if err != nil {
		return nil, err
	}
	p.Steps = append(p.Steps, fieldPath.Steps...)
	return xpath.FromPath(p), nil
}

// buildPositionalQuery constructs /scope[ordinal]/field.
func buildPositionalQuery(scope string, ordinal int, field string) (*xpath.Query, error) {
	p, err := xpath.ParsePath("/" + scope)
	if err != nil {
		return nil, err
	}
	last := &p.Steps[len(p.Steps)-1]
	last.Predicates = append(last.Predicates, xpath.Number{Value: float64(ordinal)})
	fieldPath, err := xpath.ParsePath(field)
	if err != nil {
		return nil, err
	}
	p.Steps = append(p.Steps, fieldPath.Steps...)
	return xpath.FromPath(p), nil
}
