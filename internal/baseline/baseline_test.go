package baseline

import (
	"math/rand"
	"testing"

	"wmxml/internal/attack"
	"wmxml/internal/datagen"
	"wmxml/internal/rewrite"
	"wmxml/internal/wmark"
)

func cfg(key, markSeed string) Config {
	return Config{
		Key:   []byte(key),
		Mark:  wmark.Random(markSeed, 64),
		Gamma: 4,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Seed: 1})
	c := cfg("base-key", "base-mark")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, c)
	if err != nil {
		t.Fatal(err)
	}
	if er.Carriers == 0 {
		t.Fatalf("no carriers: %+v", er)
	}
	dr, err := Detect(doc, c)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detection.Detected || dr.Detection.MatchFraction != 1.0 {
		t.Errorf("baseline self-detection failed: %+v", dr.Detection)
	}
}

func TestBaselineWrongKey(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Seed: 2})
	c := cfg("right", "mark")
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, c); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Key = []byte("wrong")
	dr, err := Detect(doc, bad)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detection.Detected {
		t.Errorf("wrong key detected: %+v", dr.Detection)
	}
}

func TestBaselineSurvivesNothingStructural(t *testing.T) {
	// The defining weakness: re-ordering the document destroys detection.
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Seed: 3})
	c := cfg("struct-key", "struct-mark")
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, c); err != nil {
		t.Fatal(err)
	}
	reordered, err := (attack.Reorder{}).Apply(doc, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Detect(reordered, c)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detection.Detected {
		t.Errorf("baseline survived re-ordering: match=%.3f", dr.Detection.MatchFraction)
	}
	if dr.Detection.MatchFraction < 0.3 || dr.Detection.MatchFraction > 0.75 {
		t.Errorf("match after reorder = %.3f, expected near coin-flip", dr.Detection.MatchFraction)
	}
}

func TestBaselineReorganizationDestroys(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Seed: 5})
	c := cfg("reorg-key", "reorg-mark")
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, c); err != nil {
		t.Fatal(err)
	}
	reorg, err := attack.Reorganization{Mapping: rewrite.Figure1Mapping()}.Apply(doc, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Detect(reorg, c)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detection.Detected {
		t.Errorf("baseline survived re-organization: match=%.3f", dr.Detection.MatchFraction)
	}
}

func TestBaselineUntouchedByValueNoiseAtLowRate(t *testing.T) {
	// Fairness check: the baseline is not a strawman — with the document
	// structure intact it resists mild value alteration.
	ds := datagen.Publications(datagen.PubConfig{Books: 400, Seed: 7})
	c := cfg("noise-key", "noise-mark")
	c.Gamma = 2
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, c); err != nil {
		t.Fatal(err)
	}
	altered, err := (attack.ValueAlteration{Fraction: 0.1}).Apply(doc, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Detect(altered, c)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detection.Detected {
		t.Errorf("baseline died under 10%% value noise: %+v", dr.Detection)
	}
}

func TestEnumerateLabelsUnique(t *testing.T) {
	ds := datagen.Library(datagen.LibraryConfig{Items: 50, Seed: 9})
	seen := make(map[string]bool)
	for _, li := range enumerate(ds.Doc) {
		if seen[li.label] {
			t.Fatalf("duplicate label %q", li.label)
		}
		seen[li.label] = true
	}
}

func TestSniffAlgorithm(t *testing.T) {
	cases := []struct {
		v    string
		want string
	}{
		{"1998", "numeric-lsb"},
		{"55.50", "numeric-lsb"},
		{"QUJDREVGR0hJSktM", "binary-lsb"},
		{"Stonebraker", "text-case"},
		{"!!!", ""},
	}
	for _, tc := range cases {
		alg := sniffAlgorithm(tc.v)
		got := ""
		if alg != nil {
			got = alg.Name()
		}
		if got != tc.want {
			t.Errorf("sniff(%q) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestBaselineConfigErrors(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 5, Seed: 1})
	if _, err := Embed(ds.Doc.Clone(), Config{Mark: wmark.Bits{1}}); err == nil {
		t.Errorf("missing key accepted")
	}
	if _, err := Detect(ds.Doc, Config{Key: []byte("k")}); err == nil {
		t.Errorf("missing mark accepted")
	}
}
