// Package baseline implements a structure-labelled watermarking scheme in
// the spirit of Sion, Atallah and Prabhakar's "Resilient information
// hiding for abstract semi-structures" (IWDW 2003) — the related work [5]
// the paper compares against:
//
//	"[5] … utilizes a graph labeling scheme to overcome these problems.
//	 However, without taking into account the semantics within the data,
//	 that scheme is still vulnerable to data reorganization. It also
//	 ignores the redundancy problem."
//
// The baseline labels every value-bearing node by its canonical
// structural position (the tag-and-ordinal path from the root), selects
// carriers and assigns bits by keyed HMAC over the label, and embeds via
// the same per-type plug-ins WmXML uses. That gives it exactly the two
// properties the paper attributes to [5]: labels are semantics-blind
// (re-organization and re-ordering re-label everything, so detection
// collapses to coin-flipping) and redundancy-oblivious (FD duplicates get
// independent labels and bits, so normalizing them wipes the mark). The
// E4/E5 experiments measure both against WmXML.
package baseline

import (
	"encoding/base64"
	"strings"

	"wmxml/internal/wa"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// Config parameterizes the baseline scheme.
type Config struct {
	// Key is the secret key.
	Key []byte
	// Mark is the watermark.
	Mark wmark.Bits
	// Gamma is the selection ratio (default 10).
	Gamma int
	// Xi is the number of candidate embedding positions (default 4).
	Xi int
	// Tau is the detection threshold (default 0.85).
	Tau float64
	// MinCoverage is the minimum voted-bit coverage (default 0.5).
	MinCoverage float64
}

func (c Config) withDefaults() Config {
	if c.Gamma == 0 {
		c.Gamma = 10
	}
	if c.Xi == 0 {
		c.Xi = 4
	}
	if c.Tau == 0 {
		c.Tau = 0.85
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 0.5
	}
	return c
}

// Result reports an embed or detect pass.
type Result struct {
	// Candidates is the number of labelled value nodes.
	Candidates int
	// Carriers is the number of selected nodes.
	Carriers int
	// Detection holds the score for Detect calls.
	Detection wmark.Result
}

// labelledItem pairs a value item with its structural label.
type labelledItem struct {
	item  xpath.Item
	label string
}

// enumerate collects every value-bearing node with its canonical
// structural label: leaf element texts and attribute values, labelled by
// the positional path (plus attribute name).
func enumerate(doc *xmltree.Node) []labelledItem {
	var out []labelledItem
	xmltree.WalkElements(doc, func(e *xmltree.Node) {
		for _, a := range e.Attrs {
			out = append(out, labelledItem{
				item:  xpath.Item{Node: e, Attr: a.Name},
				label: e.Path() + "/@" + a.Name,
			})
		}
		if isValueLeaf(e) {
			out = append(out, labelledItem{
				item:  xpath.Item{Node: e},
				label: e.Path(),
			})
		}
	})
	return out
}

func isValueLeaf(e *xmltree.Node) bool {
	if len(e.Children) == 0 {
		return false
	}
	for _, c := range e.Children {
		if c.Kind == xmltree.ElementNode {
			return false
		}
	}
	return strings.TrimSpace(e.Text()) != ""
}

// sniffAlgorithm picks the plug-in for a value by inspecting it — the
// baseline has no schema to consult.
func sniffAlgorithm(v string) wa.Algorithm {
	t := strings.TrimSpace(v)
	num := wa.Numeric{}
	if num.CanEmbed(t) {
		return num
	}
	if len(t) >= 16 && len(t)%4 == 0 {
		if _, err := base64.StdEncoding.DecodeString(t); err == nil {
			return wa.Binary{}
		}
	}
	txt := wa.Text{}
	if txt.CanEmbed(t) {
		return txt
	}
	return nil
}

// Embed inserts the watermark into doc in place.
func Embed(doc *xmltree.Node, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sel, err := wmark.NewSelector(cfg.Key, cfg.Gamma, len(cfg.Mark), cfg.Xi)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, li := range enumerate(doc) {
		res.Candidates++
		if !sel.Selected(li.label) {
			continue
		}
		alg := sniffAlgorithm(li.item.Value())
		if alg == nil {
			continue
		}
		bit := cfg.Mark[sel.BitIndex(li.label)]
		nv, err := alg.Embed(li.item.Value(), bit, wa.Params{BitPosition: sel.Position(li.label)})
		if err != nil {
			continue
		}
		li.item.SetValue(nv)
		res.Carriers++
	}
	return res, nil
}

// Detect reads the watermark back by re-labelling the suspect document.
// Any structural change re-labels nodes and decouples them from their
// embedded bits — the weakness the experiments demonstrate.
func Detect(doc *xmltree.Node, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sel, err := wmark.NewSelector(cfg.Key, cfg.Gamma, len(cfg.Mark), cfg.Xi)
	if err != nil {
		return nil, err
	}
	votes := wmark.NewVotes(len(cfg.Mark))
	res := &Result{}
	for _, li := range enumerate(doc) {
		res.Candidates++
		if !sel.Selected(li.label) {
			continue
		}
		alg := sniffAlgorithm(li.item.Value())
		if alg == nil {
			votes.AddMiss()
			continue
		}
		bit, ok := alg.Extract(li.item.Value(), wa.Params{BitPosition: sel.Position(li.label)})
		if !ok {
			votes.AddMiss()
			continue
		}
		votes.Add(sel.BitIndex(li.label), bit)
		res.Carriers++
	}
	res.Detection = votes.Score(cfg.Mark, cfg.Tau, cfg.MinCoverage)
	return res, nil
}
