// Package datagen synthesizes the data-centric XML workloads used by the
// examples, tests and experiments.
//
// The paper demonstrates WmXML "to a few sets of real world
// semi-structured data"; those datasets are not published, so this
// package generates equivalents for the three domains the paper names:
// the publication database of figure 1, the job-advertisement site of the
// introduction's motivating example, and a commercial digital library.
// Every generator is deterministic in its seed and plants the semantics
// the experiments rely on: a key per record type and at least one
// functional dependency that produces genuine redundancy.
package datagen

import (
	"encoding/base64"
	"fmt"
	"math/rand"

	"wmxml/internal/schema"
	"wmxml/internal/semantics"
	"wmxml/internal/xmltree"
)

// Dataset bundles a generated document with everything WmXML needs to
// watermark it: schema, semantic catalog, watermark targets and
// usability query templates.
type Dataset struct {
	Name      string
	Doc       *xmltree.Node
	Schema    *schema.Schema
	Catalog   semantics.Catalog
	Targets   []string
	Templates []string
}

// Clone returns a copy of the dataset with an independent document, so
// attacks can mutate freely.
func (d *Dataset) Clone() *Dataset {
	cp := *d
	cp.Doc = d.Doc.Clone()
	return &cp
}

// Preset resolves a built-in workload by name — the single place the
// preset name set lives (the CLI, the server and the load harness all
// resolve through here). size <= 0 uses each generator's default.
func Preset(name string, size int, seed int64) (*Dataset, error) {
	switch name {
	case "pubs", "publications":
		return Publications(PubConfig{Books: size, Seed: seed}), nil
	case "jobs":
		return Jobs(JobsConfig{Jobs: size, Seed: seed}), nil
	case "library":
		return Library(LibraryConfig{Items: size, Seed: seed}), nil
	case "nested":
		return NestedPublications(NestedConfig{Books: size, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want pubs, jobs, library or nested)", name)
	}
}

// PubConfig parameterizes the publications generator.
type PubConfig struct {
	Books      int
	Publishers int // distinct publishers
	Editors    int // distinct editors; each works for exactly one publisher (the FD)
	Seed       int64
	WithCovers bool // attach base64 "cover image" payloads
	CoverBytes int  // payload size (default 96)
}

// Publications generates a figure-1-style publication database:
//
//	<db>
//	  <book publisher="...">
//	    <title>…unique…</title>  <author>…</author>+
//	    <editor>…</editor>  <year>…</year>  <price>…</price>
//	    [<cover>base64…</cover>]
//	  </book>*
//	</db>
//
// Planted semantics: title is the key of book; editor → publisher is an
// FD (every editor works for exactly one publisher), so publisher values
// repeat across an editor's books — the redundancy of challenge (C).
func Publications(cfg PubConfig) *Dataset {
	if cfg.Books <= 0 {
		cfg.Books = 100
	}
	if cfg.Publishers <= 0 {
		cfg.Publishers = max(2, cfg.Books/25)
	}
	if cfg.Editors <= 0 {
		cfg.Editors = max(3, cfg.Books/8)
	}
	if cfg.CoverBytes <= 0 {
		cfg.CoverBytes = 96
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	publishers := make([]string, cfg.Publishers)
	for i := range publishers {
		publishers[i] = pick(r, publisherNames) + fmt.Sprintf("-%02d", i)
	}
	type editor struct{ name, publisher string }
	editors := make([]editor, cfg.Editors)
	for i := range editors {
		editors[i] = editor{
			name:      pick(r, lastNames) + fmt.Sprintf(" E%02d", i),
			publisher: publishers[r.Intn(len(publishers))],
		}
	}

	root := xmltree.NewElement("db")
	for i := 0; i < cfg.Books; i++ {
		ed := editors[r.Intn(len(editors))]
		book := xmltree.NewElement("book")
		book.SetAttr("publisher", ed.publisher)
		book.AppendChild(xmltree.TextElem("title",
			fmt.Sprintf("%s %s Vol %d", pick(r, titleAdjectives), pick(r, titleNouns), i+1)))
		for a := 0; a < 1+r.Intn(3); a++ {
			book.AppendChild(xmltree.TextElem("author", pick(r, firstNames)+" "+pick(r, lastNames)))
		}
		book.AppendChild(xmltree.TextElem("editor", ed.name))
		book.AppendChild(xmltree.TextElem("year", fmt.Sprintf("%d", 1985+r.Intn(21))))
		book.AppendChild(xmltree.TextElem("price", fmt.Sprintf("%d.%02d", 20+r.Intn(90), r.Intn(100))))
		if cfg.WithCovers {
			book.AppendChild(xmltree.TextElem("cover", randomBlob(r, cfg.CoverBytes)))
		}
		root.AppendChild(book)
	}
	doc := xmltree.NewDocument()
	doc.AppendChild(root)

	s := schema.New("publications", "db")
	db := s.Declare("db")
	db.Children = []schema.ChildDecl{{Name: "book", MaxOccurs: schema.Unbounded}}
	book := s.Declare("book")
	book.Attrs = []schema.AttrDecl{{Name: "publisher", Required: true, Type: schema.TypeString}}
	book.Children = []schema.ChildDecl{
		{Name: "title", MinOccurs: 1, MaxOccurs: 1},
		{Name: "author", MinOccurs: 1, MaxOccurs: schema.Unbounded},
		{Name: "editor", MinOccurs: 1, MaxOccurs: 1},
		{Name: "year", MinOccurs: 1, MaxOccurs: 1},
		{Name: "price", MinOccurs: 1, MaxOccurs: 1},
	}
	s.Declare("title").Type = schema.TypeString
	s.Declare("author").Type = schema.TypeString
	s.Declare("editor").Type = schema.TypeString
	s.Declare("year").Type = schema.TypeInteger
	s.Declare("price").Type = schema.TypeDecimal
	targets := []string{"db/book/year", "db/book/price", "db/book/@publisher"}
	if cfg.WithCovers {
		book.Children = append(book.Children, schema.ChildDecl{Name: "cover", MinOccurs: 1, MaxOccurs: 1})
		s.Declare("cover").Type = schema.TypeImage
		targets = append(targets, "db/book/cover")
	}

	return &Dataset{
		Name:   "publications",
		Doc:    doc,
		Schema: s,
		Catalog: semantics.Catalog{
			Keys: []semantics.Key{{Scope: "db/book", KeyPath: "title"}},
			FDs:  []semantics.FD{{Scope: "db/book", Determinant: "editor", Dependent: "@publisher"}},
		},
		Targets: targets,
		Templates: []string{
			"db/book[title]/author",
			"db/book[title]/year",
			"db/book[title]/price",
			"db/book[title]/@publisher",
			"db/book[title]/editor",
		},
	}
}

// JobsConfig parameterizes the job-advertisement generator.
type JobsConfig struct {
	Jobs      int
	Companies int
	Seed      int64
}

// Jobs generates the introduction's motivating workload — a job agent's
// advertisement feed:
//
//	<jobs>
//	  <job><ref>…unique…</ref><title>…</title><company>…</company>
//	       <city>…</city><salary>…</salary><experience>…</experience></job>*
//	</jobs>
//
// Planted semantics: ref is the key of job; company → city is an FD
// (each company hires in its home city), producing redundancy.
func Jobs(cfg JobsConfig) *Dataset {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 100
	}
	if cfg.Companies <= 0 {
		cfg.Companies = max(3, cfg.Jobs/10)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	type company struct{ name, city string }
	companies := make([]company, cfg.Companies)
	for i := range companies {
		companies[i] = company{
			name: pick(r, companyNames) + fmt.Sprintf(" %02d", i),
			city: pick(r, cities),
		}
	}
	root := xmltree.NewElement("jobs")
	for i := 0; i < cfg.Jobs; i++ {
		c := companies[r.Intn(len(companies))]
		job := xmltree.NewElement("job")
		job.AppendChild(xmltree.TextElem("ref", fmt.Sprintf("JOB-%05d", i+1)))
		job.AppendChild(xmltree.TextElem("title", pick(r, jobTitles)))
		job.AppendChild(xmltree.TextElem("company", c.name))
		job.AppendChild(xmltree.TextElem("city", c.city))
		job.AppendChild(xmltree.TextElem("salary", fmt.Sprintf("%d", 30000+100*r.Intn(1200))))
		job.AppendChild(xmltree.TextElem("experience", fmt.Sprintf("%d", r.Intn(15))))
		root.AppendChild(job)
	}
	doc := xmltree.NewDocument()
	doc.AppendChild(root)

	s := schema.New("jobs", "jobs")
	jobs := s.Declare("jobs")
	jobs.Children = []schema.ChildDecl{{Name: "job", MaxOccurs: schema.Unbounded}}
	job := s.Declare("job")
	job.Children = []schema.ChildDecl{
		{Name: "ref", MinOccurs: 1, MaxOccurs: 1},
		{Name: "title", MinOccurs: 1, MaxOccurs: 1},
		{Name: "company", MinOccurs: 1, MaxOccurs: 1},
		{Name: "city", MinOccurs: 1, MaxOccurs: 1},
		{Name: "salary", MinOccurs: 1, MaxOccurs: 1},
		{Name: "experience", MinOccurs: 1, MaxOccurs: 1},
	}
	s.Declare("ref").Type = schema.TypeString
	s.Declare("title").Type = schema.TypeString
	s.Declare("company").Type = schema.TypeString
	s.Declare("city").Type = schema.TypeString
	s.Declare("salary").Type = schema.TypeInteger
	s.Declare("experience").Type = schema.TypeInteger

	return &Dataset{
		Name:   "jobs",
		Doc:    doc,
		Schema: s,
		Catalog: semantics.Catalog{
			Keys: []semantics.Key{{Scope: "jobs/job", KeyPath: "ref"}},
			FDs:  []semantics.FD{{Scope: "jobs/job", Determinant: "company", Dependent: "city"}},
		},
		Targets: []string{"jobs/job/salary", "jobs/job/experience", "jobs/job/city"},
		Templates: []string{
			"jobs/job[ref]/title",
			"jobs/job[ref]/salary",
			"jobs/job[ref]/company",
			"jobs/job[ref]/city",
		},
	}
}

// LibraryConfig parameterizes the digital-library generator.
type LibraryConfig struct {
	Items      int
	Categories int
	Seed       int64
	ThumbBytes int
}

// Library generates a commercial digital library ("a commercial digital
// library also would need to safeguard its copyright over its collection
// of knowledge information" — paper §1):
//
//	<library>
//	  <item><isbn>…unique…</isbn><name>…</name><category>…</category>
//	        <shelf>…</shelf><pages>…</pages><rating>…</rating>
//	        <thumb>base64…</thumb></item>*
//	</library>
//
// Planted semantics: isbn is the key; category → shelf is an FD (each
// category lives on one shelf), producing redundancy. Thumbnails give
// the binary/image watermark channel.
func Library(cfg LibraryConfig) *Dataset {
	if cfg.Items <= 0 {
		cfg.Items = 100
	}
	if cfg.Categories <= 0 {
		cfg.Categories = max(4, cfg.Items/12)
	}
	if cfg.ThumbBytes <= 0 {
		cfg.ThumbBytes = 64
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	type cat struct{ name, shelf string }
	cats := make([]cat, cfg.Categories)
	for i := range cats {
		cats[i] = cat{
			name:  pick(r, categories) + fmt.Sprintf("-%02d", i),
			shelf: fmt.Sprintf("S%d-%c", 1+r.Intn(9), 'A'+rune(r.Intn(6))),
		}
	}
	root := xmltree.NewElement("library")
	for i := 0; i < cfg.Items; i++ {
		c := cats[r.Intn(len(cats))]
		item := xmltree.NewElement("item")
		item.AppendChild(xmltree.TextElem("isbn", fmt.Sprintf("978-0-%04d-%04d-%d", r.Intn(10000), i, r.Intn(10))))
		item.AppendChild(xmltree.TextElem("name", fmt.Sprintf("%s %s #%d", pick(r, titleAdjectives), pick(r, titleNouns), i+1)))
		item.AppendChild(xmltree.TextElem("category", c.name))
		item.AppendChild(xmltree.TextElem("shelf", c.shelf))
		item.AppendChild(xmltree.TextElem("pages", fmt.Sprintf("%d", 80+r.Intn(900))))
		item.AppendChild(xmltree.TextElem("rating", fmt.Sprintf("%d.%d", 1+r.Intn(4), r.Intn(10))))
		item.AppendChild(xmltree.TextElem("thumb", randomBlob(r, cfg.ThumbBytes)))
		root.AppendChild(item)
	}
	doc := xmltree.NewDocument()
	doc.AppendChild(root)

	s := schema.New("library", "library")
	lib := s.Declare("library")
	lib.Children = []schema.ChildDecl{{Name: "item", MaxOccurs: schema.Unbounded}}
	item := s.Declare("item")
	item.Children = []schema.ChildDecl{
		{Name: "isbn", MinOccurs: 1, MaxOccurs: 1},
		{Name: "name", MinOccurs: 1, MaxOccurs: 1},
		{Name: "category", MinOccurs: 1, MaxOccurs: 1},
		{Name: "shelf", MinOccurs: 1, MaxOccurs: 1},
		{Name: "pages", MinOccurs: 1, MaxOccurs: 1},
		{Name: "rating", MinOccurs: 1, MaxOccurs: 1},
		{Name: "thumb", MinOccurs: 1, MaxOccurs: 1},
	}
	s.Declare("isbn").Type = schema.TypeString
	s.Declare("name").Type = schema.TypeString
	s.Declare("category").Type = schema.TypeString
	s.Declare("shelf").Type = schema.TypeString
	s.Declare("pages").Type = schema.TypeInteger
	s.Declare("rating").Type = schema.TypeDecimal
	s.Declare("thumb").Type = schema.TypeImage

	return &Dataset{
		Name:   "library",
		Doc:    doc,
		Schema: s,
		Catalog: semantics.Catalog{
			Keys: []semantics.Key{{Scope: "library/item", KeyPath: "isbn"}},
			FDs:  []semantics.FD{{Scope: "library/item", Determinant: "category", Dependent: "shelf"}},
		},
		// pages and rating are declared and can be targeted explicitly,
		// but they are excluded from the default targets: their values
		// are small (ratings ~4.0, page counts ~100), so the default
		// xi=4 low-order perturbation would exceed the usability
		// tolerance — the imperceptibility budget the paper's §2.1
		// requires. The binary thumb channel and the FD-protected shelf
		// field carry the mark losslessly.
		Targets: []string{"library/item/thumb", "library/item/shelf"},
		Templates: []string{
			"library/item[isbn]/name",
			"library/item[isbn]/pages",
			"library/item[isbn]/rating",
			"library/item[isbn]/category",
			"library/item[isbn]/shelf",
		},
	}
}

// NestedConfig parameterizes the nested-catalog generator.
type NestedConfig struct {
	Publishers int
	Books      int // total books, distributed over publishers
	Seed       int64
}

// NestedPublications generates a catalog that is *already* hierarchical —
// the db2-style layout of the paper's figure 1(b):
//
//	<catalog>
//	  <publisher name="...">
//	    <book><title>…unique…</title><year>…</year><price>…</price></book>*
//	  </publisher>*
//	</catalog>
//
// It exercises multi-level scopes ("catalog/publisher/book") through the
// whole pipeline: identity queries, usability templates and semantics
// all address records nested two levels deep.
func NestedPublications(cfg NestedConfig) *Dataset {
	if cfg.Books <= 0 {
		cfg.Books = 100
	}
	if cfg.Publishers <= 0 {
		cfg.Publishers = max(2, cfg.Books/30)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	root := xmltree.NewElement("catalog")
	pubs := make([]*xmltree.Node, cfg.Publishers)
	for i := range pubs {
		p := xmltree.NewElement("publisher")
		p.SetAttr("name", pick(r, publisherNames)+fmt.Sprintf("-%02d", i))
		root.AppendChild(p)
		pubs[i] = p
	}
	for i := 0; i < cfg.Books; i++ {
		book := xmltree.NewElement("book")
		book.AppendChild(xmltree.TextElem("title",
			fmt.Sprintf("%s %s Vol %d", pick(r, titleAdjectives), pick(r, titleNouns), i+1)))
		book.AppendChild(xmltree.TextElem("year", fmt.Sprintf("%d", 1985+r.Intn(21))))
		book.AppendChild(xmltree.TextElem("price", fmt.Sprintf("%d.%02d", 20+r.Intn(90), r.Intn(100))))
		pubs[r.Intn(len(pubs))].AppendChild(book)
	}
	doc := xmltree.NewDocument()
	doc.AppendChild(root)

	s := schema.New("nested", "catalog")
	cat := s.Declare("catalog")
	cat.Children = []schema.ChildDecl{{Name: "publisher", MaxOccurs: schema.Unbounded}}
	pub := s.Declare("publisher")
	pub.Attrs = []schema.AttrDecl{{Name: "name", Required: true, Type: schema.TypeString}}
	pub.Children = []schema.ChildDecl{{Name: "book", MaxOccurs: schema.Unbounded}}
	book := s.Declare("book")
	book.Children = []schema.ChildDecl{
		{Name: "title", MinOccurs: 1, MaxOccurs: 1},
		{Name: "year", MinOccurs: 1, MaxOccurs: 1},
		{Name: "price", MinOccurs: 1, MaxOccurs: 1},
	}
	s.Declare("title").Type = schema.TypeString
	s.Declare("year").Type = schema.TypeInteger
	s.Declare("price").Type = schema.TypeDecimal

	return &Dataset{
		Name:   "nested",
		Doc:    doc,
		Schema: s,
		Catalog: semantics.Catalog{
			Keys: []semantics.Key{{Scope: "catalog/publisher/book", KeyPath: "title"}},
		},
		Targets: []string{"catalog/publisher/book/year", "catalog/publisher/book/price"},
		Templates: []string{
			"catalog/publisher/book[title]/year",
			"catalog/publisher/book[title]/price",
			"catalog/publisher[@name]/book/title",
		},
	}
}

// Figure1DB1 returns the paper's figure 1(a) document db1.xml, verbatim
// modulo whitespace (with a second mkp book added to make the
// editor → publisher redundancy visible, as in figure 1(b)).
func Figure1DB1() *xmltree.Node {
	return xmltree.MustParseString(`<db>
  <book publisher="mkp">
    <title>Readings in Database Systems</title>
    <author>Stonebraker</author>
    <author>Hellerstein</author>
    <editor>Harrypotter</editor>
    <year>1998</year>
  </book>
  <book publisher="acm">
    <title>Database Design</title>
    <author>Berstein</author>
    <author>Newcomer</author>
    <editor>Gamer</editor>
    <year>1998</year>
  </book>
  <book publisher="mkp">
    <title>XML Query Processing</title>
    <author>Stonebraker</author>
    <editor>Harrypotter</editor>
    <year>2001</year>
  </book>
</db>`)
}

func randomBlob(r *rand.Rand, n int) string {
	raw := make([]byte, n)
	r.Read(raw)
	return base64.StdEncoding.EncodeToString(raw)
}

func pick(r *rand.Rand, list []string) string { return list[r.Intn(len(list))] }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var (
	publisherNames  = []string{"mkp", "acm", "ieee", "springer", "elsevier", "wiley", "oreilly", "addison"}
	firstNames      = []string{"Michael", "Jennifer", "David", "Maria", "James", "Linda", "Robert", "Susan", "Wei", "Xuan", "Kian", "Dhruv", "Hwee", "Elena", "Omar", "Priya"}
	lastNames       = []string{"Stonebraker", "Hellerstein", "Gray", "Codd", "Tan", "Zhou", "Pang", "Mangla", "Kim", "Garcia", "Mueller", "Ivanov", "Tanaka", "Okafor", "Silva", "Novak"}
	titleAdjectives = []string{"Readings in", "Principles of", "Advanced", "Foundations of", "Practical", "Modern", "Distributed", "Scalable", "Secure", "Adaptive"}
	titleNouns      = []string{"Database Systems", "Query Processing", "Data Integration", "Transaction Management", "Information Retrieval", "Stream Processing", "Data Mining", "Storage Engines", "Access Control", "Semi-structured Data"}
	companyNames    = []string{"Acme Analytics", "Borealis Systems", "Cascade Software", "DataSpring", "Evergreen Tech", "Fjord Computing", "Granite Labs", "Harbor Digital"}
	cities          = []string{"Singapore", "Trondheim", "Hanover", "Zurich", "Austin", "Seattle", "Tokyo", "Sydney", "Toronto", "Dublin"}
	jobTitles       = []string{"Database Engineer", "Systems Analyst", "Data Architect", "Backend Developer", "Site Reliability Engineer", "Research Scientist", "QA Engineer", "Product Manager"}
	categories      = []string{"databases", "security", "networks", "algorithms", "compilers", "graphics", "systems", "theory"}
)
