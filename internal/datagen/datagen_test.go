package datagen

import (
	"testing"

	"wmxml/internal/semantics"
	"wmxml/internal/xmltree"
)

func TestPublicationsDeterministic(t *testing.T) {
	a := Publications(PubConfig{Books: 30, Seed: 7})
	b := Publications(PubConfig{Books: 30, Seed: 7})
	if !xmltree.Equal(a.Doc, b.Doc, xmltree.CompareOptions{}) {
		t.Errorf("same seed produced different documents")
	}
	c := Publications(PubConfig{Books: 30, Seed: 8})
	if xmltree.Equal(a.Doc, c.Doc, xmltree.CompareOptions{}) {
		t.Errorf("different seeds produced identical documents")
	}
}

func TestPublicationsSemanticsHold(t *testing.T) {
	ds := Publications(PubConfig{Books: 200, Editors: 20, Publishers: 5, Seed: 3})
	keyReps, fdReps, err := ds.Catalog.Verify(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range keyReps {
		if !r.OK() {
			t.Errorf("planted key violated: %+v", r)
		}
	}
	for _, r := range fdReps {
		if !r.OK() {
			t.Errorf("planted FD violated: %+v", r.Violations)
		}
		if r.DupMembers == 0 {
			t.Errorf("FD has no redundancy: %+v", r)
		}
	}
}

func TestPublicationsValidatesAgainstSchema(t *testing.T) {
	ds := Publications(PubConfig{Books: 50, Seed: 1, WithCovers: true})
	if vs := ds.Schema.Validate(ds.Doc); len(vs) != 0 {
		t.Errorf("generated document invalid: %v", vs[:min(3, len(vs))])
	}
	// Covers present and base64.
	covers := 0
	xmltree.WalkElements(ds.Doc, func(e *xmltree.Node) {
		if e.Name == "cover" {
			covers++
		}
	})
	if covers != 50 {
		t.Errorf("covers = %d", covers)
	}
}

func TestJobsDataset(t *testing.T) {
	ds := Jobs(JobsConfig{Jobs: 120, Companies: 10, Seed: 11})
	if vs := ds.Schema.Validate(ds.Doc); len(vs) != 0 {
		t.Fatalf("jobs document invalid: %v", vs[:min(3, len(vs))])
	}
	keyReps, fdReps, err := ds.Catalog.Verify(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if !keyReps[0].OK() {
		t.Errorf("ref key violated")
	}
	if !fdReps[0].OK() || fdReps[0].DupMembers == 0 {
		t.Errorf("company->city FD: %+v", fdReps[0])
	}
	if keyReps[0].Instances != 120 {
		t.Errorf("instances = %d", keyReps[0].Instances)
	}
}

func TestLibraryDataset(t *testing.T) {
	ds := Library(LibraryConfig{Items: 80, Categories: 8, Seed: 5})
	if vs := ds.Schema.Validate(ds.Doc); len(vs) != 0 {
		t.Fatalf("library document invalid: %v", vs[:min(3, len(vs))])
	}
	keyReps, fdReps, err := ds.Catalog.Verify(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if !keyReps[0].OK() {
		t.Errorf("isbn key violated: %+v", keyReps[0])
	}
	if !fdReps[0].OK() || fdReps[0].DupMembers == 0 {
		t.Errorf("category->shelf FD: %+v", fdReps[0])
	}
}

func TestDatasetClone(t *testing.T) {
	ds := Jobs(JobsConfig{Jobs: 10, Seed: 2})
	cp := ds.Clone()
	cp.Doc.Root().Children[0].Detach()
	if len(ds.Doc.Root().Children) != 10 {
		t.Errorf("clone mutation leaked into original")
	}
}

func TestFigure1DB1(t *testing.T) {
	doc := Figure1DB1()
	books := doc.Root().ChildElementsNamed("book")
	if len(books) != 3 {
		t.Fatalf("books = %d", len(books))
	}
	// The paper's FD: editor -> publisher.
	rep, err := semantics.VerifyFD(doc, semantics.FD{
		Scope: "db/book", Determinant: "editor", Dependent: "@publisher"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.DupMembers != 2 {
		t.Errorf("figure-1 FD: %+v", rep)
	}
	// The paper's key: title.
	krep, err := semantics.VerifyKey(doc, semantics.Key{Scope: "db/book", KeyPath: "title"})
	if err != nil {
		t.Fatal(err)
	}
	if !krep.OK() {
		t.Errorf("figure-1 key: %+v", krep)
	}
}

func TestNestedPublications(t *testing.T) {
	ds := NestedPublications(NestedConfig{Books: 90, Publishers: 5, Seed: 3})
	if vs := ds.Schema.Validate(ds.Doc); len(vs) != 0 {
		t.Fatalf("nested document invalid: %v", vs[:min(3, len(vs))])
	}
	keyReps, _, err := ds.Catalog.Verify(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if !keyReps[0].OK() {
		t.Errorf("nested title key violated: %+v", keyReps[0])
	}
	if keyReps[0].Instances != 90 {
		t.Errorf("instances = %d, want 90 across all publishers", keyReps[0].Instances)
	}
	if got := len(ds.Doc.Root().ChildElementsNamed("publisher")); got != 5 {
		t.Errorf("publishers = %d", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	ds := Publications(PubConfig{})
	if n := len(ds.Doc.Root().Children); n != 100 {
		t.Errorf("default books = %d", n)
	}
	ds2 := Jobs(JobsConfig{})
	if n := len(ds2.Doc.Root().Children); n != 100 {
		t.Errorf("default jobs = %d", n)
	}
	ds3 := Library(LibraryConfig{})
	if n := len(ds3.Doc.Root().Children); n != 100 {
		t.Errorf("default items = %d", n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
