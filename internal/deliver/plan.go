// Package deliver implements delivery-time fingerprinting: compile a
// document's embedding once into a patch plan — byte offsets into the
// canonical serialized bytes plus, per codeword bit, the alternative
// value bytes for each mark site — then produce any recipient's copy by
// splicing, with zero parsing and O(marked bytes) work per copy.
//
// The factoring is sound because every keyed decision of the WmXML
// encoder (carrier selection, bit assignment, low-order position)
// depends only on the owner key and the unit identities, never on the
// payload being embedded: all recipient copies of one document share
// the same mark sites and differ only in which of two byte renderings
// each site carries. The plan precomputes both renderings per site and
// both query variants per unit, so applying a plan also reconstructs
// the recipient's receipt (Q) without touching the tree.
package deliver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"wmxml/internal/core"
	"wmxml/internal/identity"
	"wmxml/internal/stream"
	"wmxml/internal/wmark"
)

// PlanVersion is the plan envelope version this build reads and writes.
const PlanVersion = 1

// Site is one physical value's patch site: the half-open byte range
// [Start, End) in the canonical document bytes, the payload bit index
// that decides it, and the two alternative byte renderings — Alt[b] is
// spliced in when the recipient's payload bit is b. Sites where neither
// alternative differs from the original bytes are omitted from the plan
// (their tallies live in the owning UnitPlan).
type Site struct {
	Start int       `json:"start"`
	End   int       `json:"end"`
	Bit   int       `json:"bit"`
	Alt   [2]string `json:"alt"`
}

// UnitPlan is the receipt-side record of one selected identity unit:
// enough to reconstruct, for any payload, exactly the tallies and query
// record a direct core.Embed of that payload would have produced.
type UnitPlan struct {
	ID     string `json:"id"`
	Type   string `json:"type"`
	Target string `json:"target"`
	// Bit is the payload bit the unit carries.
	Bit int `json:"bit"`
	// Wrote and Unemb are the per-bit-value tallies: Wrote[b] values
	// written and Unemb[b] skipped when the unit's payload bit is b.
	// The unit is a carrier for payload p iff Wrote[p[Bit]] > 0.
	Wrote [2]int `json:"wrote"`
	Unemb [2]int `json:"unemb"`
	// DependsBit is the payload bit whose value selects the identity
	// query variant (a marked selector renders two different predicate
	// values); -1 when the query is payload-independent.
	DependsBit int `json:"depends_bit"`
	// Query holds the identity query per DependsBit value (both entries
	// equal when DependsBit is -1; empty for units that can never be
	// carriers).
	Query [2]string `json:"query"`
}

// Plan is a compiled patch plan for one canonical document rendering.
type Plan struct {
	Version int `json:"version"`
	// Digest is the sha256 hex of the canonical document bytes the
	// offsets index into; DocLen is their length. A plan must never be
	// applied to bytes with a different digest.
	Digest string `json:"digest"`
	DocLen int    `json:"doc_len"`
	// Indent and OmitDeclaration record the serialize options the
	// canonical bytes were produced with.
	Indent          string `json:"indent"`
	OmitDeclaration bool   `json:"omit_declaration,omitempty"`
	// PayloadBits is the payload length every recipient codeword must
	// have.
	PayloadBits int `json:"payload_bits"`
	// Sites are the patch sites, sorted by Start, non-overlapping.
	Sites []Site `json:"sites"`
	// Units are the selected identity units in enumeration order — the
	// order receipt records appear in.
	Units []UnitPlan `json:"units"`
	// Bandwidth is the capacity report from identity enumeration.
	Bandwidth identity.Report `json:"bandwidth"`
}

// DigestBytes returns the plan-store key for a canonical document
// rendering: the sha256 hex digest of its bytes.
func DigestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Validate checks the structural invariants that make a plan safe to
// splice: version, digest shape, in-bounds sorted non-overlapping
// sites, and bit indices inside the payload. Every plan read from an
// untrusted source must pass Validate before use — it is what turns a
// malformed plan into a clean error instead of an out-of-bounds splice.
func (p *Plan) Validate() error {
	if p.Version != PlanVersion {
		return fmt.Errorf("deliver: plan version %d, this build supports %d", p.Version, PlanVersion)
	}
	if len(p.Digest) != 64 {
		return fmt.Errorf("deliver: plan digest %q is not a sha256 hex digest", p.Digest)
	}
	if _, err := hex.DecodeString(p.Digest); err != nil {
		return fmt.Errorf("deliver: plan digest: %w", err)
	}
	if p.DocLen < 0 {
		return fmt.Errorf("deliver: negative document length %d", p.DocLen)
	}
	if p.PayloadBits < 1 {
		return fmt.Errorf("deliver: payload of %d bits", p.PayloadBits)
	}
	prevEnd := 0
	for i, s := range p.Sites {
		if s.Start < prevEnd || s.End < s.Start || s.End > p.DocLen {
			return fmt.Errorf("deliver: site %d range [%d,%d) overlaps or out of bounds (previous end %d, doc %d bytes)",
				i, s.Start, s.End, prevEnd, p.DocLen)
		}
		if s.Bit < 0 || s.Bit >= p.PayloadBits {
			return fmt.Errorf("deliver: site %d bit %d outside payload of %d bits", i, s.Bit, p.PayloadBits)
		}
		prevEnd = s.End
	}
	for i, u := range p.Units {
		if u.Bit < 0 || u.Bit >= p.PayloadBits {
			return fmt.Errorf("deliver: unit %d bit %d outside payload of %d bits", i, u.Bit, p.PayloadBits)
		}
		if u.DependsBit < -1 || u.DependsBit >= p.PayloadBits {
			return fmt.Errorf("deliver: unit %d depends on bit %d outside payload of %d bits", i, u.DependsBit, p.PayloadBits)
		}
		if u.Wrote[0] < 0 || u.Wrote[1] < 0 || u.Unemb[0] < 0 || u.Unemb[1] < 0 {
			return fmt.Errorf("deliver: unit %d has negative tallies", i)
		}
		if u.Wrote[0] > 0 || u.Wrote[1] > 0 {
			if u.Query[0] == "" || (u.DependsBit >= 0 && u.Query[1] == "") {
				return fmt.Errorf("deliver: carrier unit %d (%s) has no identity query", i, u.ID)
			}
		}
	}
	return nil
}

// Marshal encodes the plan as its versioned JSON envelope.
func (p *Plan) Marshal() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(p)
}

// UnmarshalPlan decodes and validates a plan envelope. Plans written by
// a newer build (higher version) are rejected rather than misread.
func UnmarshalPlan(data []byte) (*Plan, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("deliver: parse plan: %w", err)
	}
	if probe.Version > PlanVersion {
		return nil, fmt.Errorf("deliver: plan version %d is newer than this build supports (%d)", probe.Version, PlanVersion)
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("deliver: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// payloadIndex maps a payload bit to 0 or 1 for indexing Alt/Query
// pairs, treating any non-zero bit as 1 exactly like the embedding
// algorithms do.
func payloadIndex(b uint8) int {
	if b != 0 {
		return 1
	}
	return 0
}

// checkPayload verifies the codeword length against the plan.
func (p *Plan) checkPayload(payload wmark.Bits) error {
	if len(payload) != p.PayloadBits {
		return fmt.Errorf("deliver: payload has %d bits, plan wants %d", len(payload), p.PayloadBits)
	}
	return nil
}

// Bound is a plan verified against one concrete copy of the canonical
// bytes. Binding hoists the digest check out of the per-recipient path:
// verify once, then each Deliver is pure splicing.
type Bound struct {
	plan *Plan
	orig []byte
}

// Bind validates the plan and verifies orig against its digest and
// length. A mutated original — even by one byte — is refused here, so a
// plan can never splice marks into a document it was not compiled from.
func (p *Plan) Bind(orig []byte) (*Bound, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(orig) != p.DocLen {
		return nil, fmt.Errorf("deliver: document is %d bytes, plan was compiled over %d", len(orig), p.DocLen)
	}
	if d := DigestBytes(orig); d != p.Digest {
		return nil, fmt.Errorf("deliver: document digest %s does not match plan digest %s — refusing to apply", d, p.Digest)
	}
	return &Bound{plan: p, orig: orig}, nil
}

// Plan returns the bound plan.
func (b *Bound) Plan() *Plan { return b.plan }

// AppendCopy appends the recipient copy for payload to dst and returns
// the extended slice — the allocation-free fast path for high-volume
// delivery sweeps.
func (b *Bound) AppendCopy(dst []byte, payload wmark.Bits) ([]byte, error) {
	if err := b.plan.checkPayload(payload); err != nil {
		return dst, err
	}
	pos := 0
	for _, s := range b.plan.Sites {
		dst = append(dst, b.orig[pos:s.Start]...)
		dst = append(dst, s.Alt[payloadIndex(payload[s.Bit])]...)
		pos = s.End
	}
	return append(dst, b.orig[pos:]...), nil
}

// WriteCopy writes the recipient copy for payload to w.
func (b *Bound) WriteCopy(w io.Writer, payload wmark.Bits) (int64, error) {
	if err := b.plan.checkPayload(payload); err != nil {
		return 0, err
	}
	var written int64
	pos := 0
	wr := func(p []byte) error {
		n, err := w.Write(p)
		written += int64(n)
		return err
	}
	for _, s := range b.plan.Sites {
		if err := wr(b.orig[pos:s.Start]); err != nil {
			return written, err
		}
		if err := wr([]byte(s.Alt[payloadIndex(payload[s.Bit])])); err != nil {
			return written, err
		}
		pos = s.End
	}
	return written, wr(b.orig[pos:])
}

// Receipt reconstructs the embedding receipt a direct core embed of
// payload would have produced: tallies, bandwidth and the recipient's
// query set Q, without parsing anything.
func (p *Plan) Receipt(payload wmark.Bits) (*core.EmbedResult, error) {
	if err := p.checkPayload(payload); err != nil {
		return nil, err
	}
	res := &core.EmbedResult{Bandwidth: p.Bandwidth}
	var recs []core.QueryRecord
	for _, u := range p.Units {
		bi := payloadIndex(payload[u.Bit])
		res.Unembeddable += u.Unemb[bi]
		if u.Wrote[bi] == 0 {
			continue
		}
		res.Carriers++
		res.Embedded += u.Wrote[bi]
		q := u.Query[0]
		if u.DependsBit >= 0 {
			q = u.Query[payloadIndex(payload[u.DependsBit])]
		}
		recs = append(recs, core.QueryRecord{ID: u.ID, Query: q, Type: u.Type, Target: u.Target})
	}
	if len(recs) > 0 {
		res.Records = recs
	}
	return res, nil
}

// ApplyReader streams the recipient copy for payload from src to dst
// in constant memory, composing the plan's edits with the streaming
// layer's chunked splice. The source's digest is computed during the
// copy and verified at the end — a mismatch (or a truncated or
// overlong source) returns an error, and the caller must discard the
// partially written output. Callers that must not emit a single
// unverified byte should materialize the original and use Bind.
func (p *Plan) ApplyReader(dst io.Writer, src io.Reader, payload wmark.Bits) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := p.checkPayload(payload); err != nil {
		return err
	}
	edits := make([]stream.Edit, len(p.Sites))
	for i, s := range p.Sites {
		edits[i] = stream.Edit{Start: int64(s.Start), End: int64(s.End), Repl: []byte(s.Alt[payloadIndex(payload[s.Bit])])}
	}
	h := sha256.New()
	n, err := stream.Splice(dst, io.TeeReader(src, h), edits, 0)
	if err != nil {
		return err
	}
	if n != int64(p.DocLen) {
		return fmt.Errorf("deliver: source is %d bytes, plan was compiled over %d — output must be discarded", n, p.DocLen)
	}
	if d := hex.EncodeToString(h.Sum(nil)); d != p.Digest {
		return fmt.Errorf("deliver: source digest %s does not match plan digest %s — output must be discarded", d, p.Digest)
	}
	return nil
}
