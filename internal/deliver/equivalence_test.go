package deliver

// The splice-equivalence suite is the proof obligation of delivery-time
// fingerprinting: a spliced recipient copy must be BYTE-IDENTICAL to
// what the full parse+embed path produces for the same recipient — not
// just equivalent, identical — and tracing a spliced copy must accuse
// the same recipient with the same p-value. It extends the pattern of
// internal/stream's equivalence tests (prove the fast path against the
// reference path, then trust the fast path).

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/fingerprint"
	"wmxml/internal/xmltree"
)

// canonOpts is the canonical rendering the suite compiles plans for —
// the same Indent "  " every CLI and server response uses.
var canonOpts = xmltree.SerializeOptions{Indent: "  "}

func testFingerprinter(t *testing.T, ds *datagen.Dataset, key string, gamma int) *fingerprint.System {
	t.Helper()
	s, err := fingerprint.New(fingerprint.Options{
		Key:     []byte(key),
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: ds.Targets,
		Gamma:   gamma,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func serializeDoc(t *testing.T, doc *xmltree.Node) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := xmltree.Serialize(&buf, doc, canonOpts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// firstDiff locates the first differing byte for a readable failure.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hiA, hiB := max(0, i-40), min(len(a), i+40), min(len(b), i+40)
			return fmt.Sprintf("byte %d:\n  spliced: ...%q...\n  embed:   ...%q...", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}

// TestSpliceEquivalence is the core property: for every preset × size ×
// recipient, Deliver(plan, r) == fingerprint.Embed(doc, r), byte for
// byte, and the reconstructed receipt matches the embed receipt field
// for field.
func TestSpliceEquivalence(t *testing.T) {
	recipients := []string{"r-alpha", "r-beta", "r-gamma", "acme corp", "r-delta"}
	for _, preset := range []string{"pubs", "jobs", "library", "nested"} {
		for _, size := range []int{20, 150} {
			t.Run(fmt.Sprintf("%s-%d", preset, size), func(t *testing.T) {
				ds, err := datagen.Preset(preset, size, 2005)
				if err != nil {
					t.Fatal(err)
				}
				fp := testFingerprinter(t, ds, "owner-key-6", 3)

				before := serializeDoc(t, ds.Doc)
				plan, canonical, err := Compile(ds.Doc, fp.PlanConfig(), canonOpts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(before, canonical) {
					t.Fatal("canonical bytes differ from plain serialization")
				}
				if !bytes.Equal(serializeDoc(t, ds.Doc), before) {
					t.Fatal("Compile mutated the source document")
				}
				bound, err := plan.Bind(canonical)
				if err != nil {
					t.Fatal(err)
				}

				for _, r := range recipients {
					full := ds.Doc.Clone()
					res, err := fp.Embed(full, r)
					if err != nil {
						t.Fatalf("recipient %q: embed: %v", r, err)
					}
					want := serializeDoc(t, full)

					payload := fp.Payload(r)
					got, err := bound.AppendCopy(nil, payload)
					if err != nil {
						t.Fatalf("recipient %q: deliver: %v", r, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("recipient %q: spliced copy differs from full embed at %s", r, firstDiff(got, want))
					}

					// Streaming applier: same bytes from a reader.
					var sb bytes.Buffer
					if err := plan.ApplyReader(&sb, bytes.NewReader(canonical), payload); err != nil {
						t.Fatalf("recipient %q: ApplyReader: %v", r, err)
					}
					if !bytes.Equal(sb.Bytes(), want) {
						t.Fatalf("recipient %q: streamed copy differs from full embed at %s", r, firstDiff(sb.Bytes(), want))
					}

					// Receipt reconstruction: same tallies, same Q.
					rec, err := plan.Receipt(payload)
					if err != nil {
						t.Fatalf("recipient %q: receipt: %v", r, err)
					}
					if rec.Carriers != res.Carriers || rec.Embedded != res.Embedded || rec.Unembeddable != res.Unembeddable {
						t.Fatalf("recipient %q: tallies (%d,%d,%d) want (%d,%d,%d)", r,
							rec.Carriers, rec.Embedded, rec.Unembeddable, res.Carriers, res.Embedded, res.Unembeddable)
					}
					if !reflect.DeepEqual(rec.Bandwidth, res.Bandwidth) {
						t.Fatalf("recipient %q: bandwidth report differs", r)
					}
					if !reflect.DeepEqual(rec.Records, res.Records) {
						for i := range rec.Records {
							if i < len(res.Records) && !reflect.DeepEqual(rec.Records[i], res.Records[i]) {
								t.Fatalf("recipient %q: record %d differs:\n  plan:  %+v\n  embed: %+v", r, i, rec.Records[i], res.Records[i])
							}
						}
						t.Fatalf("recipient %q: %d records, embed has %d", r, len(rec.Records), len(res.Records))
					}
				}
			})
		}
	}
}

// TestPlanJSONRoundTrip: a plan survives its codec and still delivers
// identical bytes.
func TestPlanJSONRoundTrip(t *testing.T) {
	ds, err := datagen.Preset("pubs", 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	fp := testFingerprinter(t, ds, "rt-key", 3)
	plan, canonical, err := Compile(ds.Doc, fp.PlanConfig(), canonOpts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := plan.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, back) {
		t.Fatal("plan changed across JSON round trip")
	}
	b1, err := mustBind(t, plan, canonical).AppendCopy(nil, fp.Payload("r1"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := mustBind(t, back, canonical).AppendCopy(nil, fp.Payload("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("round-tripped plan delivers different bytes")
	}
}

func mustBind(t *testing.T, p *Plan, orig []byte) *Bound {
	t.Helper()
	b, err := p.Bind(orig)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTraceEquivalence: tracing a spliced copy accuses the same
// recipient with the same p-value as tracing the full-embed copy —
// both through the receipt's queries and blind.
func TestTraceEquivalence(t *testing.T) {
	ds, err := datagen.Preset("pubs", 250, 2005)
	if err != nil {
		t.Fatal(err)
	}
	fp := testFingerprinter(t, ds, "trace-key", 3)
	candidates := []string{"r-0", "r-1", "r-2", "r-3", "r-4", "r-5"}
	leaker := candidates[2]

	plan, canonical, err := Compile(ds.Doc, fp.PlanConfig(), canonOpts)
	if err != nil {
		t.Fatal(err)
	}
	spliced, err := mustBind(t, plan, canonical).AppendCopy(nil, fp.Payload(leaker))
	if err != nil {
		t.Fatal(err)
	}
	full := ds.Doc.Clone()
	res, err := fp.Embed(full, leaker)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := plan.Receipt(fp.Payload(leaker))
	if err != nil {
		t.Fatal(err)
	}

	splicedDoc, err := xmltree.Parse(bytes.NewReader(spliced), xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"queries", "blind"} {
		optsS := fingerprint.TraceOptions{}
		optsF := fingerprint.TraceOptions{}
		if mode == "queries" {
			optsS.Records = rec.Records
			optsF.Records = res.Records
		}
		trS, err := fp.Trace(splicedDoc, candidates, optsS)
		if err != nil {
			t.Fatalf("%s: trace spliced: %v", mode, err)
		}
		trF, err := fp.Trace(full, candidates, optsF)
		if err != nil {
			t.Fatalf("%s: trace full: %v", mode, err)
		}
		if !reflect.DeepEqual(trS.Accused, trF.Accused) {
			t.Fatalf("%s: accusations differ: spliced %v, full %v", mode, trS.Accused, trF.Accused)
		}
		if len(trS.Accused) == 0 || trS.Accused[0] != leaker {
			t.Fatalf("%s: spliced copy did not accuse the leaker: %v", mode, trS.Accused)
		}
		for i := range trS.Accusations {
			a, b := trS.Accusations[i], trF.Accusations[i]
			if a.Recipient != b.Recipient || a.PValue != b.PValue {
				t.Fatalf("%s: accusation %d differs: spliced %s p=%v, full %s p=%v",
					mode, i, a.Recipient, a.PValue, b.Recipient, b.PValue)
			}
		}
	}
	// Guard against silent emptiness: the matrix must actually mark.
	if plan.PayloadBits == 0 || len(plan.Sites) == 0 || strings.TrimSpace(string(spliced)) == "" {
		t.Fatal("degenerate plan")
	}
}
