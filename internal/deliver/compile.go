package deliver

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"wmxml/internal/core"
	"wmxml/internal/identity"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// markedValue records, for one physical item a recipient copy may
// rewrite, the payload bit that decides it and the item's post-
// insertion textual value under either bit choice. The compiler uses
// it to simulate phase-2 query generation (a unit whose selector is a
// marked value renders two query variants).
type markedValue struct {
	bit  int
	post [2]string
}

// markedKey addresses a physical item like an xpath.Item does.
type markedKey struct {
	node *xmltree.Node
	attr string
}

// Compile runs the payload-independent half of embedding once over doc
// and returns the patch plan plus the canonical serialized bytes the
// plan's offsets index into. cfg.Mark supplies only the payload length;
// sopts chooses the canonical rendering (a plan only ever applies to
// bytes serialized with the same options). The document is not
// modified: alternative renderings are produced from detached clones.
func Compile(doc *xmltree.Node, cfg core.Config, sopts xmltree.SerializeOptions) (*Plan, []byte, error) {
	sites, rep, err := core.EnumerateEmbedSites(doc, cfg, nil)
	if err != nil {
		return nil, nil, err
	}
	payloadBits := len(cfg.WithDefaults().Mark)

	// Span capture: every physical item of every embeddable site becomes
	// a span target, so the canonical serialization reports exactly the
	// byte ranges splicing may rewrite.
	type itemRef struct{ site, item int }
	var targets []xmltree.SpanTarget
	var refs []itemRef
	for si, s := range sites {
		if s.Alg == nil {
			continue
		}
		for ii, item := range s.Unit.Items {
			targets = append(targets, xmltree.SpanTarget{Node: item.Node, Attr: item.Attr})
			refs = append(refs, itemRef{si, ii})
		}
	}
	var buf bytes.Buffer
	spans, err := xmltree.SerializeSpans(&buf, doc, sopts, targets)
	if err != nil {
		return nil, nil, fmt.Errorf("deliver: compile: %w", err)
	}
	canonical := buf.Bytes()

	// Pass A: per item, mirror the embedder for both bit values —
	// identical CanEmbed/Embed decisions, identical tallies — and
	// render the alternative bytes each bit choice would serialize to.
	type unitTally struct{ wrote, unemb [2]int }
	tallies := make([]unitTally, len(sites))
	marked := make(map[markedKey]markedValue)
	var planSites []Site
	for ti, ref := range refs {
		s := sites[ref.site]
		item := s.Unit.Items[ref.item]
		span := spans[ti]
		origSlice := string(canonical[span.Start:span.End])
		v := item.Value()
		if !s.Alg.CanEmbed(v) {
			tallies[ref.site].unemb[0]++
			tallies[ref.site].unemb[1]++
			continue
		}
		var alt, post [2]string
		wroteAny := false
		for b := 0; b < 2; b++ {
			nv, err := s.Alg.Embed(v, uint8(b), s.Params)
			if err != nil {
				tallies[ref.site].unemb[b]++
				alt[b] = origSlice
				post[b] = v
				continue
			}
			tallies[ref.site].wrote[b]++
			wroteAny = true
			if item.IsAttr() {
				alt[b] = xmltree.EscapeAttr(nv)
				post[b] = nv
			} else {
				clone := item.Node.Clone()
				clone.SetText(nv)
				var ab strings.Builder
				if err := xmltree.SerializeAt(&ab, clone, span.Depth, sopts); err != nil {
					return nil, nil, fmt.Errorf("deliver: compile: render alternative for %s: %w", s.Unit.ID, err)
				}
				alt[b] = ab.String()
				post[b] = clone.Text()
			}
		}
		if wroteAny {
			marked[markedKey{item.Node, item.Attr}] = markedValue{bit: s.BitIndex, post: post}
		}
		if alt[0] != origSlice || alt[1] != origSlice {
			planSites = append(planSites, Site{Start: span.Start, End: span.End, Bit: s.BitIndex, Alt: alt})
		}
	}

	// Pass B: simulate phase-2 query generation for every selected unit,
	// for both values of whichever payload bit its selector depends on.
	// Runs after pass A so cross-unit dependencies (an FD unit whose
	// determinant another unit marks) see the full marked-value table.
	units := make([]UnitPlan, len(sites))
	for si, s := range sites {
		u := s.Unit
		up := UnitPlan{
			ID:         u.ID,
			Type:       u.Type.String(),
			Target:     u.Scope + "/" + u.Field,
			Bit:        s.BitIndex,
			Wrote:      tallies[si].wrote,
			Unemb:      tallies[si].unemb,
			DependsBit: -1,
		}
		if s.Alg == nil {
			n := len(u.Items)
			up.Unemb = [2]int{n, n}
		}
		if up.Wrote[0] > 0 || up.Wrote[1] > 0 {
			fb := u.Query.String()
			up.Query = [2]string{fb, fb}
			if u.SelRel != "" {
				switch selIt, ok := selectorItem(u); {
				case !ok:
					// Keep the pre-embedding fallback, exactly like
					// Rebuild's error path.
				default:
					if m, hit := marked[markedKey{selIt.Node, selIt.Attr}]; hit {
						up.DependsBit = m.bit
						for b := 0; b < 2; b++ {
							if q, err := u.RebuildWithValue(m.post[b]); err == nil {
								up.Query[b] = q.String()
							}
						}
						if up.Query[0] == up.Query[1] {
							up.DependsBit = -1
						}
					} else if q, err := u.RebuildWithValue(selIt.Value()); err == nil {
						up.Query = [2]string{q.String(), q.String()}
					}
				}
			}
		}
		units[si] = up
	}

	sort.Slice(planSites, func(i, j int) bool { return planSites[i].Start < planSites[j].Start })
	p := &Plan{
		Version:         PlanVersion,
		Digest:          DigestBytes(canonical),
		DocLen:          len(canonical),
		Indent:          sopts.Indent,
		OmitDeclaration: sopts.OmitDeclaration,
		PayloadBits:     payloadBits,
		Sites:           planSites,
		Units:           units,
		Bandwidth:       rep,
	}
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("deliver: compile produced an invalid plan: %w", err)
	}
	return p, canonical, nil
}

// selectorItem resolves the unit's identity selector on the (unmarked)
// document, mirroring Rebuild's lookup: the unit's first instance,
// then the first match of the selector-relative path under it.
func selectorItem(u identity.Unit) (xpath.Item, bool) {
	inst := u.Instance(0)
	if inst == nil {
		return xpath.Item{}, false
	}
	selQ, err := xpath.Compile(u.SelRel)
	if err != nil {
		return xpath.Item{}, false
	}
	return selQ.SelectFirst(inst)
}
