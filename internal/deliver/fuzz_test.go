package deliver

// Fuzzing the plan codec and applier: plans arrive over the wire and
// from on-disk stores, so a malformed, truncated or adversarial plan
// must produce a clean error — never a panic, never a splice outside
// the document bytes.

import (
	"bytes"
	"encoding/json"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/fingerprint"
	"wmxml/internal/wmark"
)

// fuzzSeedPlan compiles one real plan for the seed corpus.
func fuzzSeedPlan(f *testing.F) (*Plan, []byte) {
	f.Helper()
	ds, err := datagen.Preset("pubs", 15, 11)
	if err != nil {
		f.Fatal(err)
	}
	fp, err := fingerprint.New(fingerprint.Options{
		Key: []byte("fuzz-key"), Schema: ds.Schema, Catalog: ds.Catalog,
		Targets: ds.Targets, Gamma: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	plan, canonical, err := Compile(ds.Doc, fp.PlanConfig(), canonOpts)
	if err != nil {
		f.Fatal(err)
	}
	return plan, canonical
}

// maxFuzzPayloadBits bounds the payload the harness allocates for a
// plan's claimed geometry — a hostile plan must not OOM the fuzzer.
const maxFuzzPayloadBits = 1 << 12

func FuzzPlanRoundTrip(f *testing.F) {
	plan, _ := fuzzSeedPlan(f)
	good, err := plan.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])                                           // truncated
	f.Add(bytes.Replace(good, []byte(`"start"`), []byte(`"xtart"`), 1)) // field drop
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99,"digest":"00"}`))
	f.Add([]byte(`{"version":1,"digest":"` + plan.Digest + `","doc_len":-5,"payload_bits":1}`))
	f.Add([]byte(`{"version":1,"digest":"` + plan.Digest + `","doc_len":10,"payload_bits":1,` +
		`"sites":[{"start":8,"end":4,"bit":0,"alt":["a","b"]}]}`))
	f.Add([]byte(`{"version":1,"digest":"` + plan.Digest + `","doc_len":10,"payload_bits":1,` +
		`"sites":[{"start":0,"end":6,"bit":0,"alt":["a","b"]},{"start":4,"end":8,"bit":0,"alt":["a","b"]}]}`)) // overlap
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPlan(data)
		if err != nil {
			return // rejected cleanly — the only acceptable failure mode
		}
		// An accepted plan must re-encode and decode to itself.
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted plan failed to marshal: %v", err)
		}
		back, err := UnmarshalPlan(out)
		if err != nil {
			t.Fatalf("re-encoded plan rejected: %v", err)
		}
		b1, _ := json.Marshal(p)
		b2, _ := json.Marshal(back)
		if !bytes.Equal(b1, b2) {
			t.Fatal("plan changed across round trip")
		}
	})
}

func FuzzApplyPlan(f *testing.F) {
	plan, canonical := fuzzSeedPlan(f)
	good, err := plan.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good, canonical, uint64(0))
	f.Add(good, canonical, uint64(0xdeadbeef))
	f.Add(good, canonical[:len(canonical)-3], uint64(1)) // truncated original
	f.Add(good, append(append([]byte{}, canonical...), " \n"...), uint64(1))
	mutated := append([]byte{}, canonical...)
	mutated[len(mutated)/3] ^= 0x20
	f.Add(good, mutated, uint64(2)) // digest mismatch
	f.Add([]byte(`{"version":1}`), []byte("<a/>"), uint64(3))
	f.Fuzz(func(t *testing.T, planData, doc []byte, payloadSeed uint64) {
		p, err := UnmarshalPlan(planData)
		if err != nil {
			return
		}
		if p.PayloadBits > maxFuzzPayloadBits {
			return
		}
		payload := make(wmark.Bits, p.PayloadBits)
		for i := range payload {
			payload[i] = uint8(payloadSeed>>(uint(i)%64)) & 1
		}
		if b, err := p.Bind(doc); err == nil {
			out, err := b.AppendCopy(nil, payload)
			if err != nil {
				t.Fatalf("bound plan failed to apply: %v", err)
			}
			// The spliced copy is the original with each site's bytes
			// replaced; everything outside the sites must be intact.
			if len(out) < p.DocLen-totalSiteBytes(p) {
				t.Fatalf("spliced output impossibly short: %d", len(out))
			}
			var sw bytes.Buffer
			if err := p.ApplyReader(&sw, bytes.NewReader(doc), payload); err != nil {
				t.Fatalf("ApplyReader failed where Bind succeeded: %v", err)
			}
			if !bytes.Equal(sw.Bytes(), out) {
				t.Fatal("ApplyReader and AppendCopy disagree")
			}
		} else {
			// Bind refused (digest/length mismatch): the streaming path
			// must refuse too, never silently deliver.
			var sw bytes.Buffer
			if err := p.ApplyReader(&sw, bytes.NewReader(doc), payload); err == nil {
				t.Fatal("ApplyReader accepted a document Bind refused")
			}
		}
	})
}

func totalSiteBytes(p *Plan) int {
	n := 0
	for _, s := range p.Sites {
		n += s.End - s.Start
	}
	return n
}
