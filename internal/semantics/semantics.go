// Package semantics models the data semantics WmXML builds identifiers
// from: keys and functional dependencies (FDs).
//
// Paper §2.3: "An XML document can usually be modeled as a tree structure,
// in which two major forms of semantics could be found — keys and
// functional dependencies. … WmXML constructs identifiers from these keys
// and functional dependencies, so that the identifiers can differentiate
// different data elements and be independent from data redundancies."
//
// A Key says: within the instance set selected by Scope, the value at
// KeyPath uniquely identifies an instance (e.g. every db/book has a
// distinct title). An FD says: within Scope, the value at Determinant
// functionally determines the value at Dependent (the paper's example:
// editor → publisher — an editor works for exactly one publisher, so
// publisher values repeat wherever an editor repeats). Keys feed identity
// queries; FDs expose the redundancy that the redundancy-removal attack
// exploits.
package semantics

import (
	"fmt"
	"sort"
	"strings"

	"wmxml/internal/schema"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// Key declares a key constraint: KeyPath is unique and total over the
// instances selected by Scope.
type Key struct {
	// Scope is the name path (e.g. "db/book") selecting the keyed
	// instances.
	Scope string
	// KeyPath is an XPath relative to an instance (e.g. "title" or
	// "@isbn") whose value identifies the instance.
	KeyPath string
}

// String renders the key as Scope ! KeyPath.
func (k Key) String() string { return k.Scope + " ! " + k.KeyPath }

// FD declares a functional dependency within the instances of Scope:
// Determinant → Dependent.
type FD struct {
	Scope       string
	Determinant string
	Dependent   string
}

// String renders the FD as Scope : Determinant -> Dependent.
func (f FD) String() string {
	return fmt.Sprintf("%s : %s -> %s", f.Scope, f.Determinant, f.Dependent)
}

// compileScope turns a name path like "db/book" into an absolute query.
func compileScope(scope string) (*xpath.Query, error) {
	s := strings.TrimPrefix(scope, "/")
	if s == "" {
		return nil, fmt.Errorf("semantics: empty scope")
	}
	return xpath.Compile("/" + s)
}

// Instances returns the elements selected by a scope name path.
func Instances(doc *xmltree.Node, scope string) ([]*xmltree.Node, error) {
	return InstancesIndexed(doc, scope, nil)
}

// InstancesIndexed is Instances accelerated by a document index; ix may
// be nil, and results are identical either way.
func InstancesIndexed(doc *xmltree.Node, scope string, ix xpath.DocIndex) ([]*xmltree.Node, error) {
	q, err := compileScope(scope)
	if err != nil {
		return nil, err
	}
	items := q.SelectIndexed(doc, ix)
	out := make([]*xmltree.Node, 0, len(items))
	for _, it := range items {
		if !it.IsAttr() && it.Node.Kind == xmltree.ElementNode {
			out = append(out, it.Node)
		}
	}
	return out, nil
}

// relValue evaluates a relative path from an instance and returns the
// value of the first match plus whether any match exists.
func relValue(inst *xmltree.Node, rel *xpath.Query) (string, bool) {
	it, ok := rel.SelectFirst(inst)
	if !ok {
		return "", false
	}
	return it.Value(), true
}

// KeyReport is the outcome of verifying a key constraint on a document.
type KeyReport struct {
	Key        Key
	Instances  int
	Missing    int                 // instances with no key value
	Duplicates map[string][]string // key value -> instance paths (len > 1)
}

// OK reports whether the key holds: total and unique.
func (r KeyReport) OK() bool { return r.Missing == 0 && len(r.Duplicates) == 0 }

// VerifyKey checks a key constraint against a document.
func VerifyKey(doc *xmltree.Node, key Key) (KeyReport, error) {
	rep := KeyReport{Key: key, Duplicates: make(map[string][]string)}
	insts, err := Instances(doc, key.Scope)
	if err != nil {
		return rep, err
	}
	rel, err := xpath.Compile(key.KeyPath)
	if err != nil {
		return rep, fmt.Errorf("semantics: key path %q: %w", key.KeyPath, err)
	}
	rep.Instances = len(insts)
	byVal := make(map[string][]string)
	for _, inst := range insts {
		v, ok := relValue(inst, rel)
		if !ok || strings.TrimSpace(v) == "" {
			rep.Missing++
			continue
		}
		byVal[v] = append(byVal[v], inst.Path())
	}
	for v, paths := range byVal {
		if len(paths) > 1 {
			rep.Duplicates[v] = paths
		}
	}
	return rep, nil
}

// FDViolation is one instance pair breaking a functional dependency.
type FDViolation struct {
	DeterminantValue string
	DependentValues  []string // the distinct conflicting values
}

// FDReport is the outcome of verifying an FD on a document.
type FDReport struct {
	FD         FD
	Instances  int
	Groups     int // distinct determinant values observed
	MaxGroup   int // size of the largest group
	DupMembers int // instances living in groups of size >= 2
	Violations []FDViolation
}

// OK reports whether the dependency holds on the document.
func (r FDReport) OK() bool { return len(r.Violations) == 0 }

// VerifyFD checks a functional dependency against a document.
func VerifyFD(doc *xmltree.Node, fd FD) (FDReport, error) {
	rep := FDReport{FD: fd}
	insts, err := Instances(doc, fd.Scope)
	if err != nil {
		return rep, err
	}
	det, err := xpath.Compile(fd.Determinant)
	if err != nil {
		return rep, fmt.Errorf("semantics: determinant %q: %w", fd.Determinant, err)
	}
	dep, err := xpath.Compile(fd.Dependent)
	if err != nil {
		return rep, fmt.Errorf("semantics: dependent %q: %w", fd.Dependent, err)
	}
	rep.Instances = len(insts)
	type group struct {
		values map[string]bool
		size   int
	}
	groups := make(map[string]*group)
	for _, inst := range insts {
		dv, ok := relValue(inst, det)
		if !ok {
			continue
		}
		pv, ok := relValue(inst, dep)
		if !ok {
			continue
		}
		g := groups[dv]
		if g == nil {
			g = &group{values: make(map[string]bool)}
			groups[dv] = g
		}
		g.values[pv] = true
		g.size++
	}
	rep.Groups = len(groups)
	keys := make([]string, 0, len(groups))
	for dv := range groups {
		keys = append(keys, dv)
	}
	sort.Strings(keys)
	for _, dv := range keys {
		g := groups[dv]
		if g.size > rep.MaxGroup {
			rep.MaxGroup = g.size
		}
		if g.size >= 2 {
			rep.DupMembers += g.size
		}
		if len(g.values) > 1 {
			vals := make([]string, 0, len(g.values))
			for v := range g.values {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			rep.Violations = append(rep.Violations, FDViolation{DeterminantValue: dv, DependentValues: vals})
		}
	}
	return rep, nil
}

// DupGroup is one redundancy group induced by an FD: the set of dependent
// items that must agree because they share a determinant value.
type DupGroup struct {
	FD               FD
	DeterminantValue string
	// Members are the dependent value items (elements or attributes),
	// one per instance in the group.
	Members []xpath.Item
}

// DuplicateGroups computes all redundancy groups of an FD over a
// document, including singleton groups (callers filter by size when they
// only care about true duplication). Groups are sorted by determinant
// value.
func DuplicateGroups(doc *xmltree.Node, fd FD) ([]DupGroup, error) {
	insts, err := Instances(doc, fd.Scope)
	if err != nil {
		return nil, err
	}
	det, err := xpath.Compile(fd.Determinant)
	if err != nil {
		return nil, err
	}
	dep, err := xpath.Compile(fd.Dependent)
	if err != nil {
		return nil, err
	}
	byVal := make(map[string][]xpath.Item)
	for _, inst := range insts {
		dv, ok := relValue(inst, det)
		if !ok {
			continue
		}
		item, ok := dep.SelectFirst(inst)
		if !ok {
			continue
		}
		byVal[dv] = append(byVal[dv], item)
	}
	vals := make([]string, 0, len(byVal))
	for v := range byVal {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	out := make([]DupGroup, 0, len(vals))
	for _, v := range vals {
		out = append(out, DupGroup{FD: fd, DeterminantValue: v, Members: byVal[v]})
	}
	return out, nil
}

// Catalog bundles the semantic constraints a user supplies for a
// document type (paper §3: "the keys and FDs that he discovered from the
// schema of the copyrighted semi-structured data").
type Catalog struct {
	Keys []Key
	FDs  []FD
}

// Verify checks every constraint in the catalog and returns the failing
// ones with their reports.
func (c Catalog) Verify(doc *xmltree.Node) ([]KeyReport, []FDReport, error) {
	var keyReps []KeyReport
	var fdReps []FDReport
	for _, k := range c.Keys {
		r, err := VerifyKey(doc, k)
		if err != nil {
			return nil, nil, err
		}
		keyReps = append(keyReps, r)
	}
	for _, f := range c.FDs {
		r, err := VerifyFD(doc, f)
		if err != nil {
			return nil, nil, err
		}
		fdReps = append(fdReps, r)
	}
	return keyReps, fdReps, nil
}

// KeyFor returns the first key whose scope matches, if any.
func (c Catalog) KeyFor(scope string) (Key, bool) {
	for _, k := range c.Keys {
		if k.Scope == scope {
			return k, true
		}
	}
	return Key{}, false
}

// FDsFor returns all FDs scoped at the given name path.
func (c Catalog) FDsFor(scope string) []FD {
	var out []FD
	for _, f := range c.FDs {
		if f.Scope == scope {
			out = append(out, f)
		}
	}
	return out
}

// fieldPaths lists the candidate identifying fields of an element
// declaration: its leaf children that occur at most once per instance,
// plus its attributes (as "@name" paths).
func fieldPaths(s *schema.Schema, decl *schema.ElementDecl) []string {
	var out []string
	for _, cd := range decl.Children {
		child := s.Element(cd.Name)
		if child == nil || !child.IsLeaf() {
			continue
		}
		if cd.MaxOccurs != 1 && cd.MaxOccurs != schema.Unbounded {
			continue
		}
		out = append(out, cd.Name)
	}
	for _, ad := range decl.Attrs {
		out = append(out, "@"+ad.Name)
	}
	sort.Strings(out)
	return out
}

// DiscoverKeys proposes key constraints by testing, for every element
// with at least minInstances instances, whether any candidate field is
// total and unique. The document is evidence, not proof — discovered
// keys are suggestions for the user to confirm, mirroring the paper's
// user-driven workflow.
func DiscoverKeys(doc *xmltree.Node, s *schema.Schema, minInstances int) ([]Key, error) {
	if minInstances < 2 {
		minInstances = 2
	}
	var out []Key
	for _, name := range s.ElementNames() {
		decl := s.Element(name)
		if decl.IsLeaf() {
			continue
		}
		for _, scope := range s.PathsTo(name) {
			insts, err := Instances(doc, scope)
			if err != nil {
				return nil, err
			}
			if len(insts) < minInstances {
				continue
			}
			for _, field := range fieldPaths(s, decl) {
				k := Key{Scope: scope, KeyPath: field}
				rep, err := VerifyKey(doc, k)
				if err != nil {
					return nil, err
				}
				if rep.OK() {
					out = append(out, k)
				}
			}
		}
	}
	return out, nil
}

// DiscoveredFD pairs a proposed FD with its evidence: how many duplicate
// members witness it (higher support means the FD explains more
// redundancy and matters more to watermarking).
type DiscoveredFD struct {
	FD      FD
	Support int // instances living in duplicate groups
}

// DiscoverFDs proposes functional dependencies: for every element scope
// with enough instances, every ordered pair of candidate fields
// (determinant, dependent) that holds functionally, is non-trivial and
// has at least one duplicate group. Determinants that are themselves
// unique are skipped — such FDs hold vacuously and expose no redundancy.
func DiscoverFDs(doc *xmltree.Node, s *schema.Schema, minInstances int) ([]DiscoveredFD, error) {
	if minInstances < 2 {
		minInstances = 2
	}
	var out []DiscoveredFD
	for _, name := range s.ElementNames() {
		decl := s.Element(name)
		if decl.IsLeaf() {
			continue
		}
		for _, scope := range s.PathsTo(name) {
			insts, err := Instances(doc, scope)
			if err != nil {
				return nil, err
			}
			if len(insts) < minInstances {
				continue
			}
			fields := fieldPaths(s, decl)
			for _, det := range fields {
				detRep, err := VerifyKey(doc, Key{Scope: scope, KeyPath: det})
				if err != nil {
					return nil, err
				}
				if detRep.OK() {
					continue // determinant unique: vacuous FD
				}
				for _, dep := range fields {
					if det == dep {
						continue
					}
					fd := FD{Scope: scope, Determinant: det, Dependent: dep}
					rep, err := VerifyFD(doc, fd)
					if err != nil {
						return nil, err
					}
					if rep.OK() && rep.DupMembers > 0 {
						out = append(out, DiscoveredFD{FD: fd, Support: rep.DupMembers})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].FD.String() < out[j].FD.String()
	})
	return out, nil
}
