package semantics

import (
	"strings"
	"testing"

	"wmxml/internal/schema"
	"wmxml/internal/xmltree"
)

// Figure 1/3 of the paper: title is a key of book; editor → publisher is
// an FD ("an editor only works for one publisher").
const db1 = `<db>
  <book publisher="mkp">
    <title>Readings in Database Systems</title>
    <author>Stonebraker</author>
    <editor>Harrypotter</editor>
    <year>1998</year>
  </book>
  <book publisher="acm">
    <title>Database Design</title>
    <author>Berstein</author>
    <editor>Gamer</editor>
    <year>1998</year>
  </book>
  <book publisher="mkp">
    <title>XML Query Processing</title>
    <author>Stonebraker</author>
    <editor>Harrypotter</editor>
    <year>2001</year>
  </book>
</db>`

func TestVerifyKeyHolds(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	rep, err := VerifyKey(doc, Key{Scope: "db/book", KeyPath: "title"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("title key should hold: %+v", rep)
	}
	if rep.Instances != 3 {
		t.Errorf("instances = %d", rep.Instances)
	}
}

func TestVerifyKeyDuplicates(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	rep, err := VerifyKey(doc, Key{Scope: "db/book", KeyPath: "year"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Errorf("year should not be a key (1998 repeats)")
	}
	if paths := rep.Duplicates["1998"]; len(paths) != 2 {
		t.Errorf("duplicates[1998] = %v", paths)
	}
}

func TestVerifyKeyMissing(t *testing.T) {
	doc := xmltree.MustParseString(`<db><book><title>A</title></book><book/></db>`)
	rep, err := VerifyKey(doc, Key{Scope: "db/book", KeyPath: "title"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing != 1 || rep.OK() {
		t.Errorf("missing = %d, ok = %v", rep.Missing, rep.OK())
	}
}

func TestVerifyKeyAttrPath(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	rep, err := VerifyKey(doc, Key{Scope: "db/book", KeyPath: "@publisher"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Errorf("publisher repeats; must not be a key")
	}
}

func TestVerifyFDHolds(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	fd := FD{Scope: "db/book", Determinant: "editor", Dependent: "@publisher"}
	rep, err := VerifyFD(doc, fd)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("editor -> publisher should hold: %+v", rep.Violations)
	}
	if rep.Groups != 2 {
		t.Errorf("groups = %d, want 2 (Harrypotter, Gamer)", rep.Groups)
	}
	if rep.DupMembers != 2 {
		t.Errorf("dup members = %d, want 2", rep.DupMembers)
	}
	if rep.MaxGroup != 2 {
		t.Errorf("max group = %d", rep.MaxGroup)
	}
}

func TestVerifyFDViolated(t *testing.T) {
	src := strings.Replace(db1, `publisher="mkp">
    <title>XML Query Processing</title>`, `publisher="springer">
    <title>XML Query Processing</title>`, 1)
	doc := xmltree.MustParseString(src)
	fd := FD{Scope: "db/book", Determinant: "editor", Dependent: "@publisher"}
	rep, err := VerifyFD(doc, fd)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("violated FD reported as holding")
	}
	v := rep.Violations[0]
	if v.DeterminantValue != "Harrypotter" || len(v.DependentValues) != 2 {
		t.Errorf("violation = %+v", v)
	}
}

func TestDuplicateGroups(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	fd := FD{Scope: "db/book", Determinant: "editor", Dependent: "@publisher"}
	groups, err := DuplicateGroups(doc, fd)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Sorted by determinant: Gamer then Harrypotter.
	if groups[0].DeterminantValue != "Gamer" || len(groups[0].Members) != 1 {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if groups[1].DeterminantValue != "Harrypotter" || len(groups[1].Members) != 2 {
		t.Errorf("group 1 = %+v", groups[1])
	}
	for _, m := range groups[1].Members {
		if m.Value() != "mkp" {
			t.Errorf("member value = %q, want mkp", m.Value())
		}
	}
}

func TestDiscoverKeys(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	s := schema.Infer("db1", doc)
	keys, err := DiscoverKeys(doc, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range keys {
		if k.Scope == "db/book" && k.KeyPath == "title" {
			found = true
		}
		if k.KeyPath == "year" {
			t.Errorf("year discovered as key but 1998 repeats")
		}
	}
	if !found {
		t.Errorf("title key not discovered; got %v", keys)
	}
}

func TestDiscoverFDs(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	s := schema.Infer("db1", doc)
	fds, err := DiscoverFDs(doc, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range fds {
		if d.FD.Determinant == "editor" && d.FD.Dependent == "@publisher" {
			found = true
			if d.Support != 2 {
				t.Errorf("support = %d, want 2", d.Support)
			}
		}
		if d.FD.Determinant == "title" {
			t.Errorf("unique determinant produced FD: %v", d.FD)
		}
	}
	if !found {
		t.Errorf("editor -> @publisher not discovered; got %v", fds)
	}
}

func TestCatalog(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	cat := Catalog{
		Keys: []Key{{Scope: "db/book", KeyPath: "title"}},
		FDs:  []FD{{Scope: "db/book", Determinant: "editor", Dependent: "@publisher"}},
	}
	keyReps, fdReps, err := cat.Verify(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(keyReps) != 1 || !keyReps[0].OK() {
		t.Errorf("key reports: %+v", keyReps)
	}
	if len(fdReps) != 1 || !fdReps[0].OK() {
		t.Errorf("fd reports: %+v", fdReps)
	}
	if k, ok := cat.KeyFor("db/book"); !ok || k.KeyPath != "title" {
		t.Errorf("KeyFor: %v %v", k, ok)
	}
	if _, ok := cat.KeyFor("db/journal"); ok {
		t.Errorf("KeyFor on unknown scope returned ok")
	}
	if fds := cat.FDsFor("db/book"); len(fds) != 1 {
		t.Errorf("FDsFor: %v", fds)
	}
}

func TestInstancesBadScope(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	if _, err := Instances(doc, ""); err == nil {
		t.Errorf("empty scope accepted")
	}
	insts, err := Instances(doc, "db/areaX")
	if err != nil || len(insts) != 0 {
		t.Errorf("unknown scope: %v, %v", insts, err)
	}
}

func TestVerifyKeyBadPath(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	if _, err := VerifyKey(doc, Key{Scope: "db/book", KeyPath: "[bad"}); err == nil {
		t.Errorf("bad key path accepted")
	}
	if _, err := VerifyFD(doc, FD{Scope: "db/book", Determinant: "[", Dependent: "x"}); err == nil {
		t.Errorf("bad determinant accepted")
	}
	if _, err := VerifyFD(doc, FD{Scope: "db/book", Determinant: "editor", Dependent: "["}); err == nil {
		t.Errorf("bad dependent accepted")
	}
}

func TestStringRendering(t *testing.T) {
	k := Key{Scope: "db/book", KeyPath: "title"}
	if k.String() != "db/book ! title" {
		t.Errorf("key string = %q", k.String())
	}
	f := FD{Scope: "db/book", Determinant: "editor", Dependent: "@publisher"}
	if f.String() != "db/book : editor -> @publisher" {
		t.Errorf("fd string = %q", f.String())
	}
}
