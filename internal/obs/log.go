package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Logger is the service's structured logger: a leveled slog front-end
// with an atomically adjustable level and JSON or text output. A nil
// *Logger discards everything — the library default, so packages log
// unconditionally and pay nothing outside the daemon.
type Logger struct {
	s    *slog.Logger
	lvl  *slog.LevelVar
	drop atomic.Uint64 // records suppressed below the level (observability of the logger itself)
}

// LogOptions configures NewLogger.
type LogOptions struct {
	// Level is the minimum level: debug | info | warn | error
	// (default info).
	Level string
	// Format is json (default) or text.
	Format string
}

// ParseLevel maps a level name to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
}

// NewLogger builds a logger writing structured lines to w. An unknown
// level or format falls back to info/json rather than failing — a
// daemon must not die over a typo'd log flag (the flag parser reports
// it separately).
func NewLogger(w io.Writer, opts LogOptions) *Logger {
	lvl := new(slog.LevelVar)
	if l, err := ParseLevel(opts.Level); err == nil {
		lvl.Set(l)
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if strings.EqualFold(opts.Format, "text") {
		h = slog.NewTextHandler(w, hopts)
	} else {
		h = slog.NewJSONHandler(w, hopts)
	}
	return &Logger{s: slog.New(h), lvl: lvl}
}

// SetLevel atomically adjusts the minimum level.
func (l *Logger) SetLevel(level string) error {
	if l == nil {
		return nil
	}
	v, err := ParseLevel(level)
	if err != nil {
		return err
	}
	l.lvl.Set(v)
	return nil
}

// Enabled reports whether records at lv currently pass the level gate.
func (l *Logger) Enabled(lv slog.Level) bool {
	return l != nil && lv >= l.lvl.Level()
}

// With returns a logger that adds the given key/value pairs to every
// record (per-request fields: request id, owner, route).
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...), lvl: l.lvl}
}

// Dropped reports how many records the level gate suppressed.
func (l *Logger) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.drop.Load()
}

func (l *Logger) log(lv slog.Level, msg string, args ...any) {
	if l == nil {
		return
	}
	if lv < l.lvl.Level() {
		l.drop.Add(1)
		return
	}
	l.s.Log(context.Background(), lv, msg, args...)
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, args ...any) { l.log(slog.LevelDebug, msg, args...) }

// Info logs at info level.
func (l *Logger) Info(msg string, args ...any) { l.log(slog.LevelInfo, msg, args...) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, args ...any) { l.log(slog.LevelWarn, msg, args...) }

// Error logs at error level.
func (l *Logger) Error(msg string, args ...any) { l.log(slog.LevelError, msg, args...) }
