package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
	"time"
)

func TestRuntimeCollectorSnapshot(t *testing.T) {
	runtime.GC()                        // /gc/heap/live reads 0 until a cycle has completed
	c := NewRuntimeCollector(time.Hour) // never ticks; first sample is synchronous
	defer c.Stop()
	s := c.Snapshot()
	if s == nil {
		t.Fatal("Snapshot nil after construction — the first sample must be synchronous")
	}
	if s.SampledUnix <= 0 {
		t.Fatalf("SampledUnix = %d", s.SampledUnix)
	}
	if s.Goroutines <= 0 {
		t.Fatalf("Goroutines = %d", s.Goroutines)
	}
	if s.HeapLiveBytes <= 0 || s.HeapGoalBytes <= 0 {
		t.Fatalf("heap gauges: live=%d goal=%d", s.HeapLiveBytes, s.HeapGoalBytes)
	}
	if s.MemLimitBytes < 0 {
		t.Fatalf("MemLimitBytes = %d; the no-limit sentinel must render as 0", s.MemLimitBytes)
	}
	if runtime.GOOS == "linux" && s.OpenFDs <= 0 {
		t.Fatalf("OpenFDs = %d on linux", s.OpenFDs)
	}
	for _, h := range []RuntimeHistogram{s.GCPause, s.SchedLatency} {
		if len(h.Bounds) != len(runtimeBounds) || len(h.Counts) != len(runtimeBounds) {
			t.Fatalf("histogram not on the fixed ladder: %d bounds, %d counts", len(h.Bounds), len(h.Counts))
		}
		var prev uint64
		for i, n := range h.Counts {
			if n < prev {
				t.Fatalf("cumulative counts decrease at bound %d: %d -> %d", i, prev, n)
			}
			prev = n
		}
		if prev > h.Count {
			t.Fatalf("last cumulative bucket %d exceeds total %d", prev, h.Count)
		}
	}
}

func TestRuntimeCollectorStartStop(t *testing.T) {
	c := NewRuntimeCollector(time.Millisecond)
	c.Start()
	c.Start() // double start is a no-op
	deadline := time.Now().Add(5 * time.Second)
	for c.Ticks() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("collector took too long: %d ticks", c.Ticks())
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	n := c.Ticks()
	time.Sleep(10 * time.Millisecond)
	if c.Ticks() != n {
		t.Fatalf("ticks advanced after Stop: %d -> %d", n, c.Ticks())
	}
	c.Stop() // idempotent
}

func TestRuntimeCollectorNilAndNeverStarted(t *testing.T) {
	var nc *RuntimeCollector
	nc.Start()
	nc.Stop()
	if nc.Snapshot() != nil || nc.Ticks() != 0 || nc.SampleNow() != nil {
		t.Fatal("nil collector must be a no-op")
	}
	c := NewRuntimeCollector(time.Hour)
	c.Stop() // never started: must not hang waiting for the sampler
}

func TestFoldHistogram(t *testing.T) {
	// Runtime-shaped histogram: -Inf and +Inf edge buckets, interior
	// buckets straddling ladder bounds, and one count far past the
	// ladder's top.
	h := &metrics.Float64Histogram{
		Counts:  []uint64{1, 4, 2, 3},
		Buckets: []float64{math.Inf(-1), 1e-6, 64e-6, 1e-3, math.Inf(1)},
	}
	out := foldHistogram(h)
	if out.Count != 10 {
		t.Fatalf("Count = %d, want 10", out.Count)
	}
	// Bucket (-Inf,1e-6] lands at ladder bound 1e-6; (1e-6,64e-6] at
	// 1e-4; (64e-6,1e-3] at 1e-3; (1e-3,+Inf) only in Count.
	byBound := map[float64]uint64{}
	var prev uint64
	for i, b := range out.Bounds {
		byBound[b] = out.Counts[i] - prev
		prev = out.Counts[i]
	}
	if byBound[1e-6] != 1 || byBound[1e-4] != 4 || byBound[1e-3] != 2 {
		t.Fatalf("fold placement: %v", out.Counts)
	}
	if last := out.Counts[len(out.Counts)-1]; last != 7 {
		t.Fatalf("cumulative top = %d, want 7 (the +Inf-edge bucket rides only in Count)", last)
	}
	if out.Sum <= 0 || math.IsInf(out.Sum, 0) || math.IsNaN(out.Sum) {
		t.Fatalf("Sum = %v", out.Sum)
	}
	empty := foldHistogram(nil)
	if empty.Count != 0 || len(empty.Counts) != len(runtimeBounds) {
		t.Fatalf("nil histogram fold: %+v", empty)
	}
}
