package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is one request's span record. Create with StartRequest, carry
// with NewContext/FromContext, close with Finish. All methods are safe
// on a nil receiver (they do nothing), which is how un-instrumented
// library calls stay free, and safe for concurrent use (stream chunk
// workers emit spans from several goroutines).
type Trace struct {
	id     string
	parent string // the incoming traceparent header verbatim, "" if none
	echo   string // the traceparent echoed back (fresh span id)
	route  string
	start  time.Time // carries the monotonic clock; all offsets derive from it

	mu       sync.Mutex
	spans    []span
	owner    string
	op       string
	verdict  string
	docBytes int64
	cacheHit bool
	noSpans  bool
}

type span struct {
	name  string
	start time.Duration
	dur   time.Duration
	note  string
}

// StartRequest opens a trace for one request. A valid W3C traceparent
// header donates its trace-id as the request id (so the caller's
// distributed trace and our request id are the same token); anything
// else gets a fresh random id.
func StartRequest(traceparent, route string) *Trace {
	t := &Trace{route: route, start: time.Now(), spans: make([]span, 0, 16)}
	if tid, ok := ParseTraceparent(traceparent); ok {
		t.id = tid
		t.parent = traceparent
	} else {
		t.id = newID()
	}
	t.echo = "00-" + t.id + "-" + newSpanID() + "-01"
	return t
}

// ID returns the request id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Route returns the route label ("" on nil).
func (t *Trace) Route() string {
	if t == nil {
		return ""
	}
	return t.route
}

// Traceparent returns the header to echo: same trace-id, fresh span
// id, sampled flag set ("" on nil).
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return t.echo
}

// DisableSpans turns span recording off for this trace (request ids,
// logging fields and metrics folding still work). The daemon uses this
// when the trace ring is configured away.
func (t *Trace) DisableSpans() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.noSpans = true
	t.mu.Unlock()
}

// Span is an open span handle. The zero value (from a nil or disabled
// trace) is inert: End does nothing.
type Span struct {
	t     *Trace
	name  string
	start time.Duration
}

// StartSpan opens a named stage span. On a nil or span-disabled trace
// it returns the inert zero handle without allocating.
func (t *Trace) StartSpan(name string) Span {
	if t == nil || t.noSpans {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Since(t.start)}
}

// End closes the span.
func (s Span) End() { s.EndNote("") }

// EndNote closes the span with an annotation (e.g. "hit" / "miss" on a
// cache lookup span).
func (s Span) EndNote(note string) {
	if s.t == nil {
		return
	}
	d := time.Since(s.t.start) - s.start
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, span{name: s.name, start: s.start, dur: d, note: note})
	s.t.mu.Unlock()
}

// SetOwner records the tenant the request resolved to.
func (t *Trace) SetOwner(owner string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.owner = owner
	t.mu.Unlock()
}

// SetOp records the logical operation (embed, detect, deliver, ...)
// for per-owner op counters and the access log.
func (t *Trace) SetOp(op string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.op = op
	t.mu.Unlock()
}

// SetVerdict records the request's domain outcome (e.g. "detected").
func (t *Trace) SetVerdict(v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.verdict = v
	t.mu.Unlock()
}

// SetDocBytes records the request document size.
func (t *Trace) SetDocBytes(n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.docBytes = n
	t.mu.Unlock()
}

// SetCacheHit records whether the suspect-document cache answered.
func (t *Trace) SetCacheHit(hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cacheHit = hit
	t.mu.Unlock()
}

// SpanInfo is one completed stage in a trace snapshot.
type SpanInfo struct {
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Note    string  `json:"note,omitempty"`
}

// Snapshot is a completed trace, immutable once built — the unit the
// TraceRing retains and /debug/traces serves.
type Snapshot struct {
	RequestID  string     `json:"request_id"`
	Parent     string     `json:"traceparent,omitempty"`
	Route      string     `json:"route"`
	Owner      string     `json:"owner,omitempty"`
	Op         string     `json:"op,omitempty"`
	Status     int        `json:"status"`
	Verdict    string     `json:"verdict,omitempty"`
	DocBytes   int64      `json:"doc_bytes,omitempty"`
	CacheHit   bool       `json:"cache_hit,omitempty"`
	StartUnix  int64      `json:"start_unix"`
	DurationUS float64    `json:"dur_us"`
	Spans      []SpanInfo `json:"spans"`
}

// Finish closes the trace with the response status and total duration
// and returns the immutable snapshot (nil on a nil trace).
func (t *Trace) Finish(status int, d time.Duration) *Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &Snapshot{
		RequestID:  t.id,
		Parent:     t.parent,
		Route:      t.route,
		Owner:      t.owner,
		Op:         t.op,
		Status:     status,
		Verdict:    t.verdict,
		DocBytes:   t.docBytes,
		CacheHit:   t.cacheHit,
		StartUnix:  t.start.Unix(),
		DurationUS: float64(d.Nanoseconds()) / 1e3,
		Spans:      make([]SpanInfo, len(t.spans)),
	}
	for i, sp := range t.spans {
		snap.Spans[i] = SpanInfo{
			Name:    sp.name,
			StartUS: float64(sp.start.Nanoseconds()) / 1e3,
			DurUS:   float64(sp.dur.Nanoseconds()) / 1e3,
			Note:    sp.note,
		}
	}
	return snap
}

// StageDurations sums span durations by stage name — the per-stage
// histogram feed.
func (s *Snapshot) StageDurations() map[string]time.Duration {
	if s == nil || len(s.Spans) == 0 {
		return nil
	}
	out := make(map[string]time.Duration, len(s.Spans))
	for _, sp := range s.Spans {
		out[sp.Name] += time.Duration(sp.DurUS * 1e3)
	}
	return out
}

type ctxKey struct{}

// NewContext attaches a trace to a context. A nil trace returns ctx
// unchanged, so downstream FromContext stays nil and free.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the request trace, or nil when the context does
// not carry one (every non-daemon call path).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
