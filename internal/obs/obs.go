// Package obs is WmXML's zero-dependency telemetry core: request-scoped
// span tracing, structured logging and trace retention for the serving
// layer — the per-request, per-stage window the aggregate /metrics
// histograms cannot give.
//
// The design constraints, in order:
//
//  1. Free when off. Every instrumented layer (core decode plans, the
//     pipeline engine, stream chunk workers, delivery splices) calls
//     StartSpan/End unconditionally; when no trace rides the context —
//     every library call outside the daemon — the *Trace receiver is
//     nil, StartSpan returns a zero-value handle, and the whole path
//     compiles down to a nil check. The warm-detect allocation budget
//     (internal/core TestDecodePlanTracedNoopAllocs) pins this at ≤ 2
//     extra allocations, and in practice it is zero.
//  2. Request-scoped, not process-scoped. A Trace is created per HTTP
//     request, carried via context.Context, and records monotonic
//     stage timings (parse, index, decode, vote, splice, registry,
//     cache lookups with hit/miss notes). Completed traces fold into
//     per-stage histograms and land in a TraceRing served from the
//     admin listener as /debug/traces.
//  3. Interoperable ids. An incoming W3C `traceparent` header is
//     ingested (its trace-id becomes the request id) and echoed with a
//     fresh span id; without one a random 128-bit id is generated. The
//     id is returned in the X-Request-Id response header and in every
//     error body, so a client can quote one opaque token instead of an
//     internal error chain.
//
// Logging is a thin, level-atomic wrapper over log/slog (stdlib): JSON
// or logfmt-style text lines with per-request fields. Nil *Logger is a
// valid no-op receiver, like nil *Trace.
package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// NewRequestID returns a fresh 128-bit hex request id — the same shape
// StartRequest generates, for responses produced outside the
// instrumented request path (e.g. the debug listener's error
// envelopes).
func NewRequestID() string { return newID() }

// newID returns a 128-bit random hex id — the same shape as a W3C
// trace-id, so generated and ingested request ids are interchangeable.
func newID() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// newSpanID returns the 64-bit hex parent-id used when echoing a
// traceparent.
func newSpanID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// isHex reports whether s is entirely lowercase-hex and not all zeros
// (the traceparent spec forbids all-zero ids).
func isHex(s string) bool {
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// ParseTraceparent extracts the trace-id from a W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"). ok is false for anything
// malformed; the caller then generates a fresh id.
func ParseTraceparent(h string) (traceID string, ok bool) {
	// version "00" is the only one defined; a future version may add
	// fields but keeps the prefix shape, so accept any 2-hex version
	// except the invalid "ff".
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	ver, tid, pid := h[0:2], h[3:35], h[36:52]
	if ver == "ff" || !isHex(ver) && ver != "00" || !isHex(tid) || !isHex(pid) {
		return "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", false
	}
	return tid, true
}
