package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
)

// TraceRing retains the K most recent and the K slowest completed
// traces. Add is lock-free: the recent ring is a fixed slot array of
// atomic pointers behind a monotone position counter, and the slowest
// list is an immutable sorted slice swapped by compare-and-swap — a
// request completion never blocks on another.
//
// A nil *TraceRing is a valid disabled ring (Add and the accessors are
// no-ops), mirroring the nil *Trace convention.
type TraceRing struct {
	k       int
	pos     atomic.Uint64
	recent  []atomic.Pointer[Snapshot]
	slowest atomic.Pointer[[]*Snapshot] // sorted by DurationUS descending, immutable
}

// NewTraceRing builds a ring keeping k recent and k slowest traces;
// k <= 0 returns nil (retention disabled).
func NewTraceRing(k int) *TraceRing {
	if k <= 0 {
		return nil
	}
	r := &TraceRing{k: k, recent: make([]atomic.Pointer[Snapshot], k)}
	empty := make([]*Snapshot, 0)
	r.slowest.Store(&empty)
	return r
}

// Add folds one completed trace into both retentions.
func (r *TraceRing) Add(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	i := r.pos.Add(1) - 1
	r.recent[i%uint64(r.k)].Store(s)
	for {
		oldp := r.slowest.Load()
		old := *oldp
		if len(old) >= r.k && s.DurationUS <= old[len(old)-1].DurationUS {
			return // not among the slowest K
		}
		next := make([]*Snapshot, 0, len(old)+1)
		next = append(next, old...)
		next = append(next, s)
		sort.SliceStable(next, func(a, b int) bool { return next[a].DurationUS > next[b].DurationUS })
		if len(next) > r.k {
			next = next[:r.k]
		}
		if r.slowest.CompareAndSwap(oldp, &next) {
			return
		}
	}
}

// Recent returns up to K most recent traces, newest first.
func (r *TraceRing) Recent() []*Snapshot {
	if r == nil {
		return nil
	}
	pos := r.pos.Load()
	n := min(pos, uint64(r.k))
	out := make([]*Snapshot, 0, n)
	for off := uint64(1); off <= n; off++ {
		if s := r.recent[(pos-off)%uint64(r.k)].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Slowest returns up to K slowest traces, slowest first.
func (r *TraceRing) Slowest() []*Snapshot {
	if r == nil {
		return nil
	}
	return *r.slowest.Load()
}

// ringPage is the /debug/traces JSON document.
type ringPage struct {
	RingSize int         `json:"ring_size"`
	Seen     uint64      `json:"seen"`
	Recent   []*Snapshot `json:"recent"`
	Slowest  []*Snapshot `json:"slowest"`
}

// Handler serves the ring as JSON — mount on the admin/pprof listener,
// never the service mux (traces carry owner ids and timings). Works on
// a nil ring (serves an empty page with ring_size 0).
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		page := ringPage{Recent: []*Snapshot{}, Slowest: []*Snapshot{}}
		if r != nil {
			page.RingSize = r.k
			page.Seen = r.pos.Load()
			if rec := r.Recent(); rec != nil {
				page.Recent = rec
			}
			if sl := r.Slowest(); sl != nil {
				page.Slowest = sl
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page)
	})
}
