package obs

// The runtime health collector: the process-level half of the
// self-observing runtime. Where Trace answers "what happened to this
// request?", the collector answers "is this *node* healthy?" — heap
// live vs goal vs GOMEMLIMIT, GC pause and scheduler-latency
// distributions, goroutine count and open file descriptors, sampled
// from runtime/metrics on a ticker so the serving warm path never pays
// for them. The latest sample sits behind one atomic pointer; the
// /metrics renderer and the anomaly watchdog both read that snapshot
// without synchronizing with the sampler.

import (
	"os"
	"runtime"
	"runtime/metrics"
	"sync/atomic"
	"time"
)

// runtimeBounds is the fixed exposition ladder (seconds) the
// runtime/metrics float64 histograms are folded onto: GC pauses sit in
// the µs range, scheduler latencies µs–ms, so the ladder spans 1µs–1s.
var runtimeBounds = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1,
}

// RuntimeHistogram is a runtime/metrics distribution folded onto the
// fixed ladder. Counts are cumulative per bound; Count is the total
// (the +Inf bucket); Sum is a midpoint estimate, good enough for mean
// lines on a dashboard, never for billing.
type RuntimeHistogram struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// RuntimeSnapshot is one sample of the process health gauges. Sizes
// are bytes; a MemLimitBytes of 0 means no GOMEMLIMIT is set; OpenFDs
// is -1 where the platform offers no cheap way to count them.
type RuntimeSnapshot struct {
	SampledUnix   int64
	Goroutines    int64
	HeapLiveBytes int64
	HeapGoalBytes int64
	MemLimitBytes int64
	GCCycles      uint64
	OpenFDs       int64
	GCPause       RuntimeHistogram
	SchedLatency  RuntimeHistogram
}

// Runtime metric names sampled, resolved against metrics.All() at
// construction so a missing name on some toolchain degrades to a zero
// field instead of a panic.
const (
	mGoroutines = "/sched/goroutines:goroutines"
	mHeapLive   = "/gc/heap/live:bytes"
	mHeapGoal   = "/gc/heap/goal:bytes"
	mMemLimit   = "/gc/gomemlimit:bytes"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mGCPauses   = "/sched/pauses/total/gc:seconds"
	mSchedLat   = "/sched/latencies:seconds"
)

// RuntimeCollector samples runtime/metrics on a ticker into an atomic
// snapshot. Build with NewRuntimeCollector (which takes an immediate
// first sample, so Snapshot never returns nil), start the ticker with
// Start, stop it with Stop. All methods are safe on a nil receiver —
// the disabled-collector convention, like nil *Trace and nil *Logger.
type RuntimeCollector struct {
	interval time.Duration
	samples  []metrics.Sample
	snap     atomic.Pointer[RuntimeSnapshot]
	ticks    atomic.Uint64
	stop     chan struct{}
	done     chan struct{}
	started  atomic.Bool
}

// NewRuntimeCollector builds a collector sampling every interval
// (0 = 10s) and takes the first sample synchronously.
func NewRuntimeCollector(interval time.Duration) *RuntimeCollector {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	known := map[string]bool{}
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	c := &RuntimeCollector{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, name := range []string{mGoroutines, mHeapLive, mHeapGoal, mMemLimit, mGCCycles, mGCPauses, mSchedLat} {
		if known[name] {
			c.samples = append(c.samples, metrics.Sample{Name: name})
		}
	}
	c.SampleNow()
	return c
}

// Start launches the ticker goroutine. Calling Start twice, or on a
// nil collector, is a no-op.
func (c *RuntimeCollector) Start() {
	if c == nil || !c.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.SampleNow()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop halts the ticker and waits for the sampler goroutine to exit.
// Safe on a nil or never-started collector.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	if c.started.CompareAndSwap(false, true) {
		// Never started: nothing to wait for.
		close(c.stop)
		return
	}
	select {
	case <-c.stop: // already stopped
	default:
		close(c.stop)
	}
	<-c.done
}

// Snapshot returns the most recent sample (nil on a nil collector).
func (c *RuntimeCollector) Snapshot() *RuntimeSnapshot {
	if c == nil {
		return nil
	}
	return c.snap.Load()
}

// Ticks reports how many samples have been taken (tests and the
// /debug surface use it to show the collector is alive).
func (c *RuntimeCollector) Ticks() uint64 {
	if c == nil {
		return 0
	}
	return c.ticks.Load()
}

// SampleNow takes one sample immediately — the watchdog calls this
// before evaluating memory rules so a 10s-old snapshot cannot mask a
// fast heap climb. Safe for concurrent use with the ticker: each call
// builds a fresh snapshot and swaps the pointer.
func (c *RuntimeCollector) SampleNow() *RuntimeSnapshot {
	if c == nil {
		return nil
	}
	samples := make([]metrics.Sample, len(c.samples))
	copy(samples, c.samples)
	metrics.Read(samples)
	s := &RuntimeSnapshot{SampledUnix: time.Now().Unix(), OpenFDs: countOpenFDs()}
	for _, sm := range samples {
		switch sm.Name {
		case mGoroutines:
			s.Goroutines = int64(sm.Value.Uint64())
		case mHeapLive:
			s.HeapLiveBytes = int64(sm.Value.Uint64())
		case mHeapGoal:
			s.HeapGoalBytes = int64(sm.Value.Uint64())
		case mMemLimit:
			// math.MaxInt64 is the runtime's "no limit" sentinel; expose
			// 0 so dashboards do not plot a 9.2e18 ceiling.
			if v := int64(sm.Value.Uint64()); v < int64(1)<<62 {
				s.MemLimitBytes = v
			}
		case mGCCycles:
			s.GCCycles = sm.Value.Uint64()
		case mGCPauses:
			s.GCPause = foldHistogram(sm.Value.Float64Histogram())
		case mSchedLat:
			s.SchedLatency = foldHistogram(sm.Value.Float64Histogram())
		}
	}
	c.snap.Store(s)
	c.ticks.Add(1)
	return s
}

// foldHistogram maps a runtime/metrics histogram (variable bucket
// edges, possibly ±Inf at the ends) onto the fixed exposition ladder.
// A runtime bucket lands in the first ladder bound at or above its
// upper edge; buckets past the last bound count only toward the total
// (the +Inf bucket). Runtime histograms are cumulative over the
// process lifetime, so the folded counts render directly as a
// Prometheus histogram.
func foldHistogram(h *metrics.Float64Histogram) RuntimeHistogram {
	out := RuntimeHistogram{Bounds: runtimeBounds, Counts: make([]uint64, len(runtimeBounds))}
	if h == nil {
		return out
	}
	per := make([]uint64, len(runtimeBounds))
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		out.Count += n
		// Midpoint estimate for the sum; clamp infinite edges to the
		// finite neighbor so one outlier bucket cannot poison the mean.
		mLo, mHi := lo, hi
		if mLo < 0 || mLo != mLo { // -Inf or NaN
			mLo = 0
		}
		if mHi > runtimeBounds[len(runtimeBounds)-1]*10 || mHi != mHi {
			mHi = mLo
		}
		out.Sum += float64(n) * (mLo + mHi) / 2
		placed := false
		for b, ub := range runtimeBounds {
			if hi <= ub {
				per[b] += n
				placed = true
				break
			}
		}
		_ = placed // unplaced counts ride only in Count (the +Inf bucket)
	}
	var cum uint64
	for i, n := range per {
		cum += n
		out.Counts[i] = cum
	}
	return out
}

// countOpenFDs counts this process's open file descriptors via
// /proc/self/fd. Returns -1 where that interface does not exist.
func countOpenFDs() int64 {
	if runtime.GOOS != "linux" {
		return -1
	}
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return int64(len(ents))
}
