package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in     string
		wantID string
		ok     bool
	}{
		{valid, "4bf92f3577b34da6a3ce929d0e0e4736", true},
		{valid + "-extradata", "4bf92f3577b34da6a3ce929d0e0e4736", true}, // future version with extra fields
		{"", "", false},
		{"garbage", "", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", "", false},  // missing flags
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "", false}, // forbidden version
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", "", false}, // all-zero trace id
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", "", false}, // all-zero span id
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", "", false}, // uppercase forbidden by spec
		{"00-4bf92f3577b34da6a3ce929d0e0e473x-00f067aa0ba902b7-01", "", false}, // non-hex
		{valid + "x", "", false}, // trailing junk without a dash
	}
	for _, c := range cases {
		id, ok := ParseTraceparent(c.in)
		if ok != c.ok || id != c.wantID {
			t.Errorf("ParseTraceparent(%q) = (%q, %v), want (%q, %v)", c.in, id, ok, c.wantID, c.ok)
		}
	}
}

func TestStartRequestAdoptsTraceID(t *testing.T) {
	parent := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr := StartRequest(parent, "/v1/detect")
	if tr.ID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("id = %q, want the parent trace id", tr.ID())
	}
	echo := tr.Traceparent()
	if !strings.HasPrefix(echo, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || !strings.HasSuffix(echo, "-01") {
		t.Fatalf("echo = %q: want same trace id, sampled flag", echo)
	}
	if strings.Contains(echo, "00f067aa0ba902b7") {
		t.Fatalf("echo = %q reuses the parent span id", echo)
	}
	if _, ok := ParseTraceparent(echo); !ok {
		t.Fatalf("echo %q is not itself a valid traceparent", echo)
	}
}

func TestStartRequestFreshID(t *testing.T) {
	a := StartRequest("", "/v1/embed")
	b := StartRequest("not-a-traceparent", "/v1/embed")
	if len(a.ID()) != 32 || len(b.ID()) != 32 {
		t.Fatalf("ids %q / %q: want 32 hex chars", a.ID(), b.ID())
	}
	if a.ID() == b.ID() {
		t.Fatal("two requests got the same id")
	}
	if b.Route() != "/v1/embed" {
		t.Fatalf("route = %q", b.Route())
	}
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := StartRequest("", "/v1/detect")
	tr.SetOwner("acme")
	tr.SetOp("detect")
	tr.SetVerdict("detected")
	tr.SetDocBytes(1234)
	tr.SetCacheHit(true)

	sp := tr.StartSpan("parse")
	time.Sleep(time.Millisecond)
	sp.End()
	csp := tr.StartSpan("cache")
	csp.EndNote("hit")
	// Two decode spans must sum in StageDurations.
	d1 := tr.StartSpan("decode")
	time.Sleep(time.Millisecond)
	d1.End()
	d2 := tr.StartSpan("decode")
	time.Sleep(time.Millisecond)
	d2.End()

	snap := tr.Finish(200, 5*time.Millisecond)
	if snap.Owner != "acme" || snap.Op != "detect" || snap.Verdict != "detected" ||
		snap.DocBytes != 1234 || !snap.CacheHit || snap.Status != 200 {
		t.Fatalf("snapshot fields: %+v", snap)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	if snap.Spans[1].Note != "hit" {
		t.Fatalf("cache span note = %q", snap.Spans[1].Note)
	}
	for i := 1; i < len(snap.Spans); i++ {
		if snap.Spans[i].StartUS < snap.Spans[i-1].StartUS {
			t.Fatalf("span starts not monotone: %+v", snap.Spans)
		}
	}
	st := snap.StageDurations()
	if st["parse"] < time.Millisecond {
		t.Fatalf("parse stage %v, want >= 1ms", st["parse"])
	}
	if st["decode"] < 2*time.Millisecond {
		t.Fatalf("decode stage %v, want the sum of both decode spans (>= 2ms)", st["decode"])
	}
}

func TestTraceDisableSpans(t *testing.T) {
	tr := StartRequest("", "/v1/detect")
	tr.DisableSpans()
	sp := tr.StartSpan("parse")
	sp.End()
	snap := tr.Finish(200, time.Millisecond)
	if len(snap.Spans) != 0 {
		t.Fatalf("disabled trace recorded %d spans", len(snap.Spans))
	}
	if snap.RequestID == "" {
		t.Fatal("disabling spans must not drop the request id")
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Route() != "" || tr.Traceparent() != "" {
		t.Fatal("nil trace accessors must return empty strings")
	}
	tr.DisableSpans()
	tr.SetOwner("x")
	tr.SetOp("x")
	tr.SetVerdict("x")
	tr.SetDocBytes(1)
	tr.SetCacheHit(true)
	sp := tr.StartSpan("parse")
	sp.End()
	sp.EndNote("note")
	if snap := tr.Finish(200, time.Second); snap != nil {
		t.Fatal("nil trace Finish must return nil")
	}
	if (&Snapshot{}).StageDurations() != nil {
		t.Fatal("empty snapshot StageDurations must be nil")
	}
	var ns *Snapshot
	if ns.StageDurations() != nil {
		t.Fatal("nil snapshot StageDurations must be nil")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := StartRequest("", "/v1/embed")
	ctx := NewContext(t.Context(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost through the context")
	}
	if FromContext(t.Context()) != nil {
		t.Fatal("bare context must carry no trace")
	}
	if NewContext(t.Context(), nil) != t.Context() {
		t.Fatal("NewContext(nil) must return ctx unchanged")
	}
}

func snapWithDur(i int, us float64) *Snapshot {
	return &Snapshot{RequestID: fmt.Sprintf("req-%03d", i), Route: "/v1/detect", Status: 200, DurationUS: us}
}

func TestTraceRingRecentEviction(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		r.Add(snapWithDur(i, float64(i)))
	}
	rec := r.Recent()
	if len(rec) != 4 {
		t.Fatalf("recent len = %d, want 4", len(rec))
	}
	// Newest first: 9, 8, 7, 6 — the first six evicted.
	for i, want := range []string{"req-009", "req-008", "req-007", "req-006"} {
		if rec[i].RequestID != want {
			t.Fatalf("recent[%d] = %s, want %s (full: %v)", i, rec[i].RequestID, want, ids(rec))
		}
	}
}

func TestTraceRingSlowestK(t *testing.T) {
	r := NewTraceRing(3)
	// Durations chosen so the slowest set is not the most recent set.
	for i, us := range []float64{50, 900, 10, 700, 30, 800, 20} {
		r.Add(snapWithDur(i, us))
	}
	sl := r.Slowest()
	if len(sl) != 3 {
		t.Fatalf("slowest len = %d, want 3", len(sl))
	}
	for i, want := range []float64{900, 800, 700} {
		if sl[i].DurationUS != want {
			t.Fatalf("slowest[%d] = %v, want %v", i, sl[i].DurationUS, want)
		}
	}
}

func ids(ss []*Snapshot) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.RequestID
	}
	return out
}

func TestTraceRingHandlerJSON(t *testing.T) {
	r := NewTraceRing(2)
	r.Add(snapWithDur(0, 100))
	r.Add(snapWithDur(1, 50))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var page struct {
		RingSize int         `json:"ring_size"`
		Seen     uint64      `json:"seen"`
		Recent   []*Snapshot `json:"recent"`
		Slowest  []*Snapshot `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if page.RingSize != 2 || page.Seen != 2 {
		t.Fatalf("page meta: %+v", page)
	}
	if len(page.Recent) != 2 || page.Recent[0].RequestID != "req-001" {
		t.Fatalf("recent: %v", ids(page.Recent))
	}
	if len(page.Slowest) != 2 || page.Slowest[0].RequestID != "req-000" {
		t.Fatalf("slowest: %v", ids(page.Slowest))
	}
}

func TestNilTraceRing(t *testing.T) {
	if NewTraceRing(0) != nil || NewTraceRing(-1) != nil {
		t.Fatal("k <= 0 must return a nil ring")
	}
	var r *TraceRing
	r.Add(snapWithDur(0, 1)) // must not panic
	if r.Recent() != nil || r.Slowest() != nil {
		t.Fatal("nil ring accessors must return nil")
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var page map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("nil ring page not JSON: %v", err)
	}
	if page["ring_size"].(float64) != 0 {
		t.Fatalf("nil ring page: %v", page)
	}
}

func TestLoggerLevelsAndJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Level: "warn"})
	l.Debug("d")
	l.Info("i")
	l.Warn("w", "k", "v")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (warn+error): %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if rec["msg"] != "w" || rec["level"] != "WARN" || rec["k"] != "v" {
		t.Fatalf("record: %v", rec)
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
	if err := l.SetLevel("debug"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatal("debug suppressed after SetLevel(debug)")
	}
	if err := l.SetLevel("nope"); err == nil {
		t.Fatal("SetLevel must reject unknown levels")
	}
}

func TestLoggerTextFormatAndWith(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Format: "text"}).With("request_id", "abc123")
	l.Info("hello")
	line := buf.String()
	if strings.HasPrefix(strings.TrimSpace(line), "{") {
		t.Fatalf("text format emitted JSON: %q", line)
	}
	if !strings.Contains(line, "request_id=abc123") {
		t.Fatalf("With field missing: %q", line)
	}
}

func TestNilLoggerIsInert(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	if l.With("k", "v") != nil {
		t.Fatal("nil With must stay nil")
	}
	if l.Dropped() != 0 || l.Enabled(0) {
		t.Fatal("nil logger accessors")
	}
	if err := l.SetLevel("debug"); err != nil {
		t.Fatal("nil SetLevel must be a no-op")
	}
}

func TestParseLevel(t *testing.T) {
	for _, bad := range []string{"trace", "verbose", "INFO "} {
		if _, err := ParseLevel(bad); bad != "INFO " && err == nil {
			t.Fatalf("ParseLevel(%q) accepted", bad)
		}
	}
	if lv, err := ParseLevel(" Warning "); err != nil || lv.String() != "WARN" {
		t.Fatalf("ParseLevel(Warning) = %v, %v", lv, err)
	}
	if lv, err := ParseLevel(""); err != nil || lv.String() != "INFO" {
		t.Fatalf("ParseLevel(\"\") = %v, %v", lv, err)
	}
}
