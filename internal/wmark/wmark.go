// Package wmark supplies the keyed bit machinery shared by the WmXML
// encoder and decoder: watermark messages as bit strings, HMAC-based
// secret selection of carrier elements, per-element bit assignment, and
// majority-vote reconstruction with a detection statistic.
//
// The design follows the machinery of Agrawal–Kiernan (VLDB 2002), the
// relational ancestor the paper cites: an element is a carrier iff
// HMAC(K, id) mod gamma == 0, the watermark bit it carries is
// HMAC(K, id) mod |WM|, and detection majority-votes each bit over all
// carriers, declaring the mark present when the fraction of matching
// bits reaches a confidence threshold tau. What is WmXML-specific — and
// supplied by internal/identity — is the *id*: a semantics-derived
// identity string that survives re-organization, rather than a primary
// key of a relation.
package wmark

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
)

// Bits is a watermark as a sequence of bits, each element 0 or 1.
type Bits []uint8

// FromText encodes a text message as its UTF-8 bits, most significant bit
// first.
func FromText(msg string) Bits {
	b := []byte(msg)
	bits := make(Bits, 0, len(b)*8)
	for _, by := range b {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (by>>uint(i))&1)
		}
	}
	return bits
}

// Text decodes the bits back to text. Trailing partial bytes are dropped;
// bytes outside printable ASCII are rendered as '?' so that a corrupted
// recovery remains displayable.
func (b Bits) Text() string {
	var sb strings.Builder
	for i := 0; i+8 <= len(b); i += 8 {
		var by byte
		for j := 0; j < 8; j++ {
			by = by<<1 | b[i+j]
		}
		if by >= 0x20 && by < 0x7f {
			sb.WriteByte(by)
		} else {
			sb.WriteByte('?')
		}
	}
	return sb.String()
}

// FromHex decodes a hex string into bits (4 bits per hex digit).
func FromHex(s string) (Bits, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("wmark: bad hex watermark: %w", err)
	}
	bits := make(Bits, 0, len(raw)*8)
	for _, by := range raw {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (by>>uint(i))&1)
		}
	}
	return bits, nil
}

// Hex renders the bits as hex (zero-padded to whole bytes).
func (b Bits) Hex() string {
	n := (len(b) + 7) / 8
	raw := make([]byte, n)
	for i, bit := range b {
		if bit != 0 {
			raw[i/8] |= 1 << uint(7-i%8)
		}
	}
	return hex.EncodeToString(raw)
}

// Random derives a pseudo-random watermark of length n bits from a seed
// string. Deterministic: the same seed yields the same mark.
func Random(seed string, n int) Bits {
	bits := make(Bits, 0, n)
	counter := 0
	for len(bits) < n {
		h := sha256.Sum256([]byte(fmt.Sprintf("wmxml-mark|%s|%d", seed, counter)))
		for _, by := range h {
			for i := 7; i >= 0 && len(bits) < n; i-- {
				bits = append(bits, (by>>uint(i))&1)
			}
		}
		counter++
	}
	return bits
}

// Equal reports whether two bit strings are identical.
func (b Bits) Equal(o Bits) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the bits as a 0/1 string.
func (b Bits) String() string {
	var sb strings.Builder
	for _, bit := range b {
		sb.WriteByte('0' + bit)
	}
	return sb.String()
}

// Selector performs the keyed decisions of the scheme. It is stateless
// and safe for concurrent use.
type Selector struct {
	key     []byte
	gamma   int
	markLen int
	xi      int
}

// NewSelector builds a Selector.
//
//   - key: the secret key K. Whoever holds it can locate the carriers.
//   - gamma: selection ratio; on average 1 in gamma candidates carries a
//     bit. Must be >= 1 (1 marks everything).
//   - markLen: watermark length in bits.
//   - xi: number of candidate low-order positions for value embedding
//     (Agrawal–Kiernan's ξ). Must be >= 1.
func NewSelector(key []byte, gamma, markLen, xi int) (*Selector, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("wmark: empty secret key")
	}
	if gamma < 1 {
		return nil, fmt.Errorf("wmark: gamma must be >= 1, got %d", gamma)
	}
	if markLen < 1 {
		return nil, fmt.Errorf("wmark: watermark length must be >= 1, got %d", markLen)
	}
	if xi < 1 {
		return nil, fmt.Errorf("wmark: xi must be >= 1, got %d", xi)
	}
	return &Selector{key: append([]byte(nil), key...), gamma: gamma, markLen: markLen, xi: xi}, nil
}

// Gamma returns the selection ratio.
func (s *Selector) Gamma() int { return s.gamma }

// MarkLen returns the watermark length in bits.
func (s *Selector) MarkLen() int { return s.markLen }

// Xi returns the number of candidate embedding positions.
func (s *Selector) Xi() int { return s.xi }

func (s *Selector) mac(domain, id string) uint64 {
	m := hmac.New(sha256.New, s.key)
	m.Write([]byte(domain))
	m.Write([]byte{0})
	m.Write([]byte(id))
	sum := m.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

// Selected reports whether the identity id is a watermark carrier.
func (s *Selector) Selected(id string) bool {
	return s.mac("select", id)%uint64(s.gamma) == 0
}

// BitIndex returns which watermark bit the identity carries.
func (s *Selector) BitIndex(id string) int {
	return int(s.mac("bit", id) % uint64(s.markLen))
}

// Position returns the low-order embedding position (0 <= p < xi) for the
// identity.
func (s *Selector) Position(id string) int {
	return int(s.mac("pos", id) % uint64(s.xi))
}

// PositionIn is Position with an explicit xi, for fields whose value
// scale needs a shallower (or deeper) embedding depth than the default.
// xi < 1 falls back to the selector's default.
func (s *Selector) PositionIn(id string, xi int) int {
	if xi < 1 {
		xi = s.xi
	}
	return int(s.mac("pos", id) % uint64(xi))
}

// Votes accumulates per-bit evidence during detection: each carrier found
// in the suspect document votes for the value of one watermark bit.
type Votes struct {
	ones   []int
	zeros  []int
	total  int
	misses int
}

// NewVotes creates an accumulator for a watermark of n bits.
func NewVotes(n int) *Votes {
	return &Votes{ones: make([]int, n), zeros: make([]int, n)}
}

// Reset clears the accumulator for reuse, resizing to n bits without
// reallocating when capacity allows — what lets the decoder pool worker
// accumulators instead of allocating fresh ones per document.
func (v *Votes) Reset(n int) {
	if cap(v.ones) < n {
		v.ones = make([]int, n)
		v.zeros = make([]int, n)
	} else {
		v.ones = v.ones[:n]
		v.zeros = v.zeros[:n]
		for i := range v.ones {
			v.ones[i] = 0
			v.zeros[i] = 0
		}
	}
	v.total = 0
	v.misses = 0
}

// Add records a vote: carrier for bit index idx observed value bit.
func (v *Votes) Add(idx int, bit uint8) {
	if idx < 0 || idx >= len(v.ones) {
		return
	}
	if bit != 0 {
		v.ones[idx]++
	} else {
		v.zeros[idx]++
	}
	v.total++
}

// AddMiss records a carrier that could not be read (element missing or
// value no longer extractable). Misses lower detection confidence
// reporting but do not vote.
func (v *Votes) AddMiss() { v.misses++ }

// Merge folds the votes of o into v. Vote counts are commutative sums,
// so merging per-worker accumulators in any order yields exactly the
// votes a sequential pass would have produced — this is what makes the
// concurrent decoder bit-for-bit equivalent to the sequential one.
// Accumulators of mismatched length are ignored (caller error).
func (v *Votes) Merge(o *Votes) {
	if o == nil || len(o.ones) != len(v.ones) {
		return
	}
	for i := range v.ones {
		v.ones[i] += o.ones[i]
		v.zeros[i] += o.zeros[i]
	}
	v.total += o.total
	v.misses += o.misses
}

// Total returns the number of votes cast.
func (v *Votes) Total() int { return v.total }

// Len returns the number of bit positions the accumulator tracks.
func (v *Votes) Len() int { return len(v.ones) }

// Counts returns the raw (ones, zeros) tally of one bit position — the
// evidence fingerprint tracing correlates against recipient codes.
// Out-of-range positions report (0, 0).
func (v *Votes) Counts(idx int) (ones, zeros int) {
	if idx < 0 || idx >= len(v.ones) {
		return 0, 0
	}
	return v.ones[idx], v.zeros[idx]
}

// Misses returns the number of unreadable carriers.
func (v *Votes) Misses() int { return v.misses }

// BitsWithVotes returns how many bit positions received at least one
// vote.
func (v *Votes) BitsWithVotes() int {
	n := 0
	for i := range v.ones {
		if v.ones[i]+v.zeros[i] > 0 {
			n++
		}
	}
	return n
}

// Recover majority-votes each bit. Positions with no votes recover as 0
// and are reported in the second return value.
func (v *Votes) Recover() (Bits, int) {
	bits := make(Bits, len(v.ones))
	unvoted := 0
	for i := range v.ones {
		switch {
		case v.ones[i] > v.zeros[i]:
			bits[i] = 1
		case v.ones[i] < v.zeros[i]:
			bits[i] = 0
		default:
			if v.ones[i] == 0 {
				unvoted++
			}
			bits[i] = 0 // tie: deterministic choice
		}
	}
	return bits, unvoted
}

// Result is the outcome of comparing recovered bits against the expected
// watermark.
type Result struct {
	// Recovered is the majority-voted watermark.
	Recovered Bits
	// MatchFraction is the fraction of *voted* bit positions whose
	// majority equals the expected bit. Unvoted positions are excluded so
	// that a heavily reduced document is judged on the evidence present.
	MatchFraction float64
	// VotedBits is the number of positions with at least one vote.
	VotedBits int
	// Coverage is VotedBits / len(mark).
	Coverage float64
	// Votes and Misses mirror the accumulator totals.
	Votes  int
	Misses int
	// Detected is MatchFraction >= tau && Coverage >= minCoverage, as
	// configured in Score.
	Detected bool
}

// Score compares the accumulated votes against the expected mark.
// tau is the match threshold (e.g. 0.85); minCoverage is the minimum
// fraction of mark bits that must have received votes (e.g. 0.5).
func (v *Votes) Score(mark Bits, tau, minCoverage float64) Result {
	if len(mark) != len(v.ones) {
		// Caller error; report an impossible score rather than panic.
		return Result{}
	}
	rec, _ := v.Recover()
	match := 0
	voted := 0
	for i := range mark {
		if v.ones[i]+v.zeros[i] == 0 {
			continue
		}
		voted++
		if rec[i] == mark[i] {
			match++
		}
	}
	res := Result{
		Recovered: rec,
		VotedBits: voted,
		Votes:     v.total,
		Misses:    v.misses,
	}
	if voted > 0 {
		res.MatchFraction = float64(match) / float64(voted)
	}
	if len(mark) > 0 {
		res.Coverage = float64(voted) / float64(len(mark))
	}
	res.Detected = voted > 0 && res.MatchFraction >= tau && res.Coverage >= minCoverage
	return res
}

// Sigma returns the standard score of the observed match fraction under
// the null hypothesis that bits are random coin flips — a measure of how
// (im)plausible the detection is by chance. Useful in experiment output.
func (r Result) Sigma() float64 {
	if r.VotedBits == 0 {
		return 0
	}
	n := float64(r.VotedBits)
	return (r.MatchFraction - 0.5) * 2 * math.Sqrt(n) / 1.0
}

// FalsePositiveProbability returns the probability that a random
// coin-flip watermark matches at least tau of n voted bits — the
// analytic false-detection rate P[Binomial(n, 1/2) >= ceil(tau·n)].
// Owners use it to size the mark: at n=64 voted bits and tau=0.85 the
// probability is below 1e-8. Callers that know the integer match count
// should use FalsePositiveProbabilityCount instead: re-deriving the
// count from a fraction can round ceil((k/n)·n) up to k+1 and shave a
// tail term off the p-value.
func FalsePositiveProbability(n int, tau float64) float64 {
	if n <= 0 {
		return 1
	}
	return FalsePositiveProbabilityCount(n, int(math.Ceil(tau*float64(n))))
}

// FalsePositiveProbabilityCount is the exact binomial tail
// P[Binomial(n, 1/2) >= k] — the false-accusation probability of a
// correlation test that observed k matching bits out of n.
func FalsePositiveProbabilityCount(n, k int) float64 {
	if n <= 0 {
		return 1
	}
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	// Sum C(n,i)/2^n for i in [k,n] in log space for numeric stability.
	logHalfPowN := -float64(n) * math.Ln2
	total := 0.0
	for i := k; i <= n; i++ {
		lg, _ := math.Lgamma(float64(n + 1))
		li, _ := math.Lgamma(float64(i + 1))
		lni, _ := math.Lgamma(float64(n - i + 1))
		total += math.Exp(lg - li - lni + logHalfPowN)
	}
	if total > 1 {
		return 1
	}
	return total
}
