package wmark

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitsTextRoundTrip(t *testing.T) {
	msg := "(C) ACME Data 2005"
	bits := FromText(msg)
	if len(bits) != len(msg)*8 {
		t.Fatalf("bit length = %d", len(bits))
	}
	if got := bits.Text(); got != msg {
		t.Errorf("round trip = %q", got)
	}
}

func TestBitsHexRoundTrip(t *testing.T) {
	bits, err := FromHex("deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 32 {
		t.Fatalf("len = %d", len(bits))
	}
	if got := bits.Hex(); got != "deadbeef" {
		t.Errorf("hex round trip = %q", got)
	}
	if _, err := FromHex("zz"); err == nil {
		t.Errorf("bad hex accepted")
	}
}

func TestBitsTextCorruptionDisplayable(t *testing.T) {
	bits := FromText("ok")
	bits[0] = 1 // 'o' 0x6f -> 0xef, non printable
	got := bits.Text()
	if len(got) != 2 {
		t.Fatalf("text len = %d", len(got))
	}
	if got[0] != '?' {
		t.Errorf("corrupt byte rendered %q, want '?'", got[0])
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random("seed", 100)
	b := Random("seed", 100)
	if !a.Equal(b) {
		t.Errorf("Random not deterministic")
	}
	c := Random("other", 100)
	if a.Equal(c) {
		t.Errorf("different seeds produced same mark")
	}
	// Roughly balanced.
	ones := 0
	for _, bit := range Random("balance", 4096) {
		ones += int(bit)
	}
	if ones < 1800 || ones > 2300 {
		t.Errorf("ones = %d / 4096, badly unbalanced", ones)
	}
}

func TestSelectorValidation(t *testing.T) {
	if _, err := NewSelector(nil, 10, 64, 4); err == nil {
		t.Errorf("empty key accepted")
	}
	if _, err := NewSelector([]byte("k"), 0, 64, 4); err == nil {
		t.Errorf("gamma 0 accepted")
	}
	if _, err := NewSelector([]byte("k"), 10, 0, 4); err == nil {
		t.Errorf("markLen 0 accepted")
	}
	if _, err := NewSelector([]byte("k"), 10, 64, 0); err == nil {
		t.Errorf("xi 0 accepted")
	}
	s, err := NewSelector([]byte("k"), 10, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gamma() != 10 || s.MarkLen() != 64 || s.Xi() != 4 {
		t.Errorf("accessors: %d %d %d", s.Gamma(), s.MarkLen(), s.Xi())
	}
}

func TestSelectorDeterminism(t *testing.T) {
	s1, _ := NewSelector([]byte("secret"), 10, 64, 4)
	s2, _ := NewSelector([]byte("secret"), 10, 64, 4)
	for _, id := range []string{"a", "b", "db/book[title='X']/year"} {
		if s1.Selected(id) != s2.Selected(id) {
			t.Errorf("Selected(%q) differs across instances", id)
		}
		if s1.BitIndex(id) != s2.BitIndex(id) {
			t.Errorf("BitIndex(%q) differs", id)
		}
		if s1.Position(id) != s2.Position(id) {
			t.Errorf("Position(%q) differs", id)
		}
	}
}

func TestSelectorKeyDependence(t *testing.T) {
	s1, _ := NewSelector([]byte("key-one"), 2, 64, 4)
	s2, _ := NewSelector([]byte("key-two"), 2, 64, 4)
	diff := 0
	for i := 0; i < 512; i++ {
		id := Random(string(rune(i)), 8).String()
		if s1.Selected(id) != s2.Selected(id) {
			diff++
		}
	}
	if diff == 0 {
		t.Errorf("selection identical under different keys")
	}
}

func TestSelectorRatio(t *testing.T) {
	s, _ := NewSelector([]byte("ratio"), 10, 64, 4)
	selected := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Selected(Random(string(rune(i))+"x", 16).String()) {
			selected++
		}
	}
	got := float64(selected) / n
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("selection rate = %.3f, want ~0.1", got)
	}
}

func TestSelectorBitIndexUniform(t *testing.T) {
	s, _ := NewSelector([]byte("uniform"), 1, 8, 4)
	counts := make([]int, 8)
	const n = 8000
	for i := 0; i < n; i++ {
		counts[s.BitIndex(Random(string(rune(i))+"y", 16).String())]++
	}
	for i, c := range counts {
		if c < n/8-300 || c > n/8+300 {
			t.Errorf("bit %d count = %d, want ~%d", i, c, n/8)
		}
	}
}

func TestSelectorPositionRange(t *testing.T) {
	s, _ := NewSelector([]byte("pos"), 1, 8, 4)
	if err := quick.Check(func(id string) bool {
		p := s.Position(id)
		return p >= 0 && p < 4
	}, nil); err != nil {
		t.Errorf("position out of range: %v", err)
	}
}

func TestVotesRecover(t *testing.T) {
	v := NewVotes(4)
	v.Add(0, 1)
	v.Add(0, 1)
	v.Add(0, 0) // majority 1
	v.Add(1, 0)
	v.Add(2, 1)
	// bit 3: no votes
	rec, unvoted := v.Recover()
	if rec.String() != "1010" {
		t.Errorf("recovered = %s", rec)
	}
	if unvoted != 1 {
		t.Errorf("unvoted = %d", unvoted)
	}
	if v.Total() != 5 {
		t.Errorf("total = %d", v.Total())
	}
	if v.BitsWithVotes() != 3 {
		t.Errorf("bits with votes = %d", v.BitsWithVotes())
	}
}

func TestVotesOutOfRangeIgnored(t *testing.T) {
	v := NewVotes(2)
	v.Add(-1, 1)
	v.Add(2, 1)
	if v.Total() != 0 {
		t.Errorf("out-of-range votes counted")
	}
}

func TestScoreDetection(t *testing.T) {
	mark := Bits{1, 0, 1, 1, 0, 0, 1, 0}
	v := NewVotes(len(mark))
	for i, b := range mark {
		v.Add(i, b)
		v.Add(i, b)
	}
	res := v.Score(mark, 0.85, 0.5)
	if !res.Detected || res.MatchFraction != 1.0 || res.Coverage != 1.0 {
		t.Errorf("perfect votes: %+v", res)
	}
}

func TestScorePartialCoverage(t *testing.T) {
	mark := Bits{1, 0, 1, 1}
	v := NewVotes(len(mark))
	v.Add(0, 1)
	v.Add(1, 0)
	// Two bits unvoted: coverage 0.5, matches perfect.
	res := v.Score(mark, 0.85, 0.5)
	if !res.Detected {
		t.Errorf("coverage at threshold should detect: %+v", res)
	}
	res2 := v.Score(mark, 0.85, 0.75)
	if res2.Detected {
		t.Errorf("coverage below threshold should not detect: %+v", res2)
	}
}

func TestScoreWrongMark(t *testing.T) {
	mark := Random("real", 64)
	wrong := Random("fake", 64)
	v := NewVotes(64)
	for i, b := range mark {
		v.Add(i, b)
	}
	res := v.Score(wrong, 0.85, 0.5)
	if res.Detected {
		t.Errorf("wrong mark detected: match=%.2f", res.MatchFraction)
	}
	if res.MatchFraction < 0.2 || res.MatchFraction > 0.8 {
		t.Errorf("wrong-mark match = %.2f, expected near 0.5", res.MatchFraction)
	}
}

func TestScoreLengthMismatch(t *testing.T) {
	v := NewVotes(8)
	res := v.Score(Bits{1, 0}, 0.85, 0.5)
	if res.Detected {
		t.Errorf("length mismatch produced detection")
	}
}

func TestMisses(t *testing.T) {
	v := NewVotes(4)
	v.AddMiss()
	v.AddMiss()
	if v.Misses() != 2 {
		t.Errorf("misses = %d", v.Misses())
	}
	res := v.Score(Bits{0, 0, 0, 0}, 0.85, 0.5)
	if res.Misses != 2 {
		t.Errorf("result misses = %d", res.Misses)
	}
}

func TestSigma(t *testing.T) {
	r := Result{MatchFraction: 1.0, VotedBits: 64}
	if r.Sigma() < 7 {
		t.Errorf("perfect 64-bit match sigma = %.1f, want > 7", r.Sigma())
	}
	chance := Result{MatchFraction: 0.5, VotedBits: 64}
	if math.Abs(chance.Sigma()) > 0.001 {
		t.Errorf("chance sigma = %f", chance.Sigma())
	}
	empty := Result{}
	if empty.Sigma() != 0 {
		t.Errorf("empty sigma = %f", empty.Sigma())
	}
}

func TestFalsePositiveProbability(t *testing.T) {
	// Exact small case: n=4, tau=0.75 -> P[X>=3] = (C(4,3)+C(4,4))/16 = 5/16.
	if got := FalsePositiveProbability(4, 0.75); math.Abs(got-5.0/16.0) > 1e-12 {
		t.Errorf("FP(4,0.75) = %v, want 0.3125", got)
	}
	// Monotone decreasing in tau.
	prev := 1.1
	for _, tau := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		got := FalsePositiveProbability(32, tau)
		if got > prev {
			t.Errorf("FP not monotone at tau=%.1f: %v > %v", tau, got, prev)
		}
		prev = got
	}
	// Production sizing claim used in the docs.
	if got := FalsePositiveProbability(64, 0.85); got > 1e-8 {
		t.Errorf("FP(64,0.85) = %v, want < 1e-8", got)
	}
	// Edge cases.
	if FalsePositiveProbability(0, 0.85) != 1 {
		t.Errorf("FP(0) should be 1")
	}
	if FalsePositiveProbability(10, 0) != 1 {
		t.Errorf("FP(tau=0) should be 1")
	}
	if got := FalsePositiveProbability(10, 1.0); math.Abs(got-math.Pow(0.5, 10)) > 1e-12 {
		t.Errorf("FP(10,1.0) = %v, want 2^-10", got)
	}
}

func TestQuickEmbedDetectIdentity(t *testing.T) {
	// Property: voting each mark bit exactly once recovers the mark.
	f := func(seed string) bool {
		mark := Random(seed, 32)
		v := NewVotes(32)
		for i, b := range mark {
			v.Add(i, b)
		}
		rec, _ := v.Recover()
		return rec.Equal(mark)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("recover identity property: %v", err)
	}
}

func TestPositionIn(t *testing.T) {
	s, _ := NewSelector([]byte("pi"), 1, 8, 4)
	// Explicit xi overrides the default range.
	for i := 0; i < 200; i++ {
		id := Random(string(rune(i))+"z", 16).String()
		if p := s.PositionIn(id, 2); p < 0 || p >= 2 {
			t.Fatalf("PositionIn(xi=2) = %d", p)
		}
		if p := s.PositionIn(id, 16); p < 0 || p >= 16 {
			t.Fatalf("PositionIn(xi=16) = %d", p)
		}
		// xi <= 0 falls back to the selector default.
		if p := s.PositionIn(id, 0); p != s.Position(id) {
			t.Fatalf("PositionIn(0) = %d, Position = %d", p, s.Position(id))
		}
	}
	// Different xi must actually reshuffle positions for some ids.
	diff := 0
	for i := 0; i < 100; i++ {
		id := Random(string(rune(i))+"w", 16).String()
		if s.PositionIn(id, 2) != s.PositionIn(id, 16) {
			diff++
		}
	}
	if diff == 0 {
		t.Errorf("PositionIn ignored xi")
	}
}
