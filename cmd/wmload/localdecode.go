package main

// LocalDecodeWarm: the one machine-independent class in the daemon
// report. The HTTP classes measure the whole request path (client,
// kernel, server); this one runs the library warm-detect path
// in-process — compiled DetectionPlan, cached document index — and
// reads allocation counts straight from runtime.MemStats, so the
// "near-zero allocations on warm detect" claim is a number in
// BENCH_PR7.json rather than an assertion in a test log. Mallocs and
// TotalAlloc are monotonic counters (GC never decrements them), so the
// delta over a serial loop is exact.

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"wmxml"
)

// localDecodeResult embeds a size-record dataset document in-process
// and measures reps warm plan detections over its cached index.
func localDecodeResult(dataset string, size int, seed int64, gamma, reps int) (benchResult, error) {
	ds, err := wmxml.DatasetByName(dataset, size, seed)
	if err != nil {
		return benchResult{}, err
	}
	sys, err := wmxml.New(wmxml.Options{
		Key: "wmload-local", Mark: "(C) wmload local",
		Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets,
		Gamma: gamma,
	})
	if err != nil {
		return benchResult{}, err
	}
	rec, err := sys.Embed(ds.Doc)
	if err != nil {
		return benchResult{}, err
	}
	ix := wmxml.NewDocumentIndex(ds.Doc)
	plan, err := sys.CompileDetection(rec.Records, nil)
	if err != nil {
		return benchResult{}, err
	}
	// Warm up: fault in the index's lazy key-value tables and the
	// internal buffer pools, and check the plan actually detects.
	for i := 0; i < 3; i++ {
		if det := plan.DetectIndexed(ds.Doc, ix); !det.Detected {
			return benchResult{}, fmt.Errorf("local decode: warm detection failed (match %.3f)", det.MatchFraction)
		}
	}
	durs := make([]time.Duration, reps) // preallocated: the loop must not allocate on our behalf
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		det := plan.DetectIndexed(ds.Doc, ix)
		durs[i] = time.Since(t0)
		if !det.Detected {
			return benchResult{}, fmt.Errorf("local decode: detection lost at rep %d", i)
		}
	}
	runtime.ReadMemStats(&ms1)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	r := durResult("LocalDecodeWarm", durs, map[string]float64{
		"allocs_per_op": float64(ms1.Mallocs-ms0.Mallocs) / float64(reps),
		"bytes_per_op":  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(reps),
		"records":       float64(size),
		"queries":       float64(len(rec.Records)),
	})
	return r, nil
}
