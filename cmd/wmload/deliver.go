package main

// The delivery benchmark class: a local (no daemon) sweep proving the
// patch-plan claim — one compile pass serves every recipient, and each
// recipient copy is a byte splice costing tens of microseconds instead
// of a full parse+embed+serialize. Results land in the same benchjson
// shape as the other classes, so BENCH_PR6.json sits next to
// BENCH_PR2..5 in the benchmark trajectory.
//
// Classes:
//
//   - DeliverCompile: the one-time plan compile (parse, select,
//     capacity, span-tracking serialize), repeated for percentiles.
//   - DeliverCopy: N recipient copies spliced from the bound plan into
//     a reused buffer — the per-copy marginal cost of delivery.
//   - DeliverFullEmbed: the same copies produced the old way (clone,
//     fingerprint embed, serialize), repeated a few times to anchor the
//     speedup ratio.
//
// Every K-th spliced copy is cross-checked byte-for-byte against a full
// fingerprint embed of the same recipient; any mismatch fails the run —
// the benchmark refuses to report a speedup for wrong bytes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"wmxml"
)

// runDeliver benchmarks plan-based delivery for recipients copies of a
// size-record document.
func runDeliver(dataset string, size, recipients int, seed int64, gamma, reps int, out string) error {
	if reps <= 0 {
		reps = 9
	}
	ds, err := wmxml.DatasetByName(dataset, size, seed)
	if err != nil {
		return err
	}
	opts := wmxml.FingerprintOptions{
		Key: "deliver-key", Schema: ds.Schema, Catalog: ds.Catalog,
		Targets: ds.Targets, Gamma: gamma,
	}
	d, err := wmxml.NewDeliverer(opts)
	if err != nil {
		return err
	}
	fp, err := wmxml.NewFingerprinter(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wmload deliver: %s × %d records, %d recipients, gamma %d\n", dataset, size, recipients, gamma)

	var rep benchOutput
	rep.Pkg = "wmxml/cmd/wmload"
	rep.Goos, rep.Goarch = runtime.GOOS, runtime.GOARCH

	// --- the one-time compile ---
	var (
		plan      *wmxml.DeliveryPlan
		canonical []byte
	)
	compileDs, err := timed(reps, func() error {
		var cerr error
		plan, canonical, cerr = d.CompilePlan(ds.Doc)
		return cerr
	})
	if err != nil {
		return fmt.Errorf("compile plan: %w", err)
	}
	rep.Results = append(rep.Results, durResult("DeliverCompile", compileDs, map[string]float64{
		"doc_bytes": float64(len(canonical)),
		"sites":     float64(len(plan.Sites)),
	}))

	bound, err := d.Bind(plan, canonical)
	if err != nil {
		return fmt.Errorf("bind plan: %w", err)
	}

	// --- the full-embed baseline ---
	fullReps := min(25, max(recipients, 1))
	fullBody := func(recipient string) ([]byte, error) {
		doc := ds.Doc.Clone()
		if _, err := fp.Fingerprint(doc, recipient); err != nil {
			return nil, err
		}
		return []byte(wmxml.SerializeXMLString(doc)), nil
	}
	fi := 0
	fullDs, err := timed(fullReps, func() error {
		fi++
		_, ferr := fullBody(fmt.Sprintf("r-%d", fi%max(recipients, 1)))
		return ferr
	})
	if err != nil {
		return fmt.Errorf("full embed: %w", err)
	}

	// --- the splice sweep ---
	checkEvery := max(recipients/10, 1)
	var buf []byte
	spliceDs := make([]time.Duration, 0, recipients)
	checked := 0
	for i := 0; i < recipients; i++ {
		recipient := fmt.Sprintf("r-%d", i)
		t0 := time.Now()
		buf, err = d.Splice(bound, buf[:0], recipient)
		if err != nil {
			return fmt.Errorf("splice %s: %w", recipient, err)
		}
		spliceDs = append(spliceDs, time.Since(t0))
		if i%checkEvery == 0 || i == recipients-1 {
			want, ferr := fullBody(recipient)
			if ferr != nil {
				return ferr
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("spliced copy for %s differs from full embed — refusing to report", recipient)
			}
			checked++
		}
	}
	sortDurations(spliceDs)
	spliceRes := durResult("DeliverCopy", spliceDs, map[string]float64{
		"recipients":     float64(recipients),
		"equiv_checked":  float64(checked),
		"copy_bytes":     float64(len(buf)),
		"p50_ratio_full": float64(pct(fullDs, 500)) / float64(max64(pct(spliceDs, 500), 1)),
	})
	rep.Results = append(rep.Results, spliceRes)
	rep.Results = append(rep.Results, durResult("DeliverFullEmbed", fullDs, map[string]float64{
		"recipients": float64(len(fullDs)),
	}))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wmload: wrote %s\n", out)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "  %-18s n=%-6d mean=%-12s p50=%-12s p99=%s\n",
			r.Name, r.Iterations, time.Duration(r.NsPerOp), time.Duration(r.Metrics["p50_ns"]), time.Duration(r.Metrics["p99_ns"]))
	}
	fmt.Fprintf(os.Stderr, "wmload deliver: per-copy p50 %s vs full embed p50 %s (%.0f× speedup), %d/%d copies byte-checked against full embeds\n",
		time.Duration(pct(spliceDs, 500)), time.Duration(pct(fullDs, 500)),
		spliceRes.Metrics["p50_ratio_full"], checked, recipients)
	return nil
}

func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func max64(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
