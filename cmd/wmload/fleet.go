package main

// The fleet sweep (--nodes): measures what N routed wmxmld nodes buy
// over one node for a multi-tenant detect workload. The scaling lever
// is aggregate cache capacity, not CPU count: each node's document
// cache is deliberately small relative to the tenant count (run the
// daemons with --cache well below --fleet-owners), so a single node
// cycling through every tenant's suspect thrashes its LRU and reparses
// almost every request, while the same workload consistent-hash-routed
// across the fleet gives each node a resident working set and serves
// warm hits. The sweep reports both phases plus the single-owner warm
// class (the PR7 latency gate), and scaling_x — the aggregate
// throughput ratio the CI gate asserts.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wmxml"
	"wmxml/internal/cluster"
)

// fleetTenant is one owner in the sweep: its credentials, its home
// node, and the marked suspect per target daemon (embedding happens on
// both the fleet and the baseline, which hold separate registries).
type fleetTenant struct {
	id, key        string
	home           string
	marked         []byte // embedded via the fleet
	markedBaseline []byte // embedded via the baseline node
}

func runFleet(nodesCSV, baseline string, ownerCount, requests, concurrency int,
	dataset string, size int, seed int64, gamma int, out string, waitFor time.Duration) error {
	var nodes []string
	for _, n := range strings.Split(nodesCSV, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) < 2 {
		return fmt.Errorf("--nodes needs at least 2 addresses, got %d", len(nodes))
	}
	ring, err := cluster.New(nodes)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	targets := append([]string(nil), nodes...)
	if baseline != "" {
		targets = append(targets, baseline)
	}
	for _, u := range targets {
		if err := waitHealthy(client, u, waitFor); err != nil {
			return err
		}
	}

	// Register every tenant and embed its own distinct document — the
	// working set that must not fit one node's cache but must fit the
	// fleet's. Registration goes through an arbitrary node to exercise
	// the router; the embed goes to the home node directly.
	tenants := make([]*fleetTenant, ownerCount)
	for i := range tenants {
		id := fmt.Sprintf("fleet-%02d", i)
		t := &fleetTenant{id: id, key: "key-" + id, home: ring.Node(id)}
		doc, err := generate(dataset, size, seed+int64(i))
		if err != nil {
			return err
		}
		reg, _ := json.Marshal(wmxml.Owner{ID: id, Key: t.key, Mark: "(C) " + id, Dataset: dataset, Gamma: gamma})
		if _, _, err := post(client, t.key, nodes[i%len(nodes)]+"/v1/owners", reg); err != nil {
			return fmt.Errorf("register %s: %w", id, err)
		}
		if t.marked, _, err = post(client, t.key, t.home+"/v1/embed?owner="+id+"&doc=fleet.xml", doc); err != nil {
			return fmt.Errorf("embed %s: %w", id, err)
		}
		if baseline != "" {
			if _, _, err := post(client, t.key, baseline+"/v1/owners", reg); err != nil {
				return fmt.Errorf("register %s on baseline: %w", id, err)
			}
			if t.markedBaseline, _, err = post(client, t.key, baseline+"/v1/embed?owner="+id+"&doc=fleet.xml", doc); err != nil {
				return fmt.Errorf("embed %s on baseline: %w", id, err)
			}
		}
		tenants[i] = t
	}
	fmt.Fprintf(os.Stderr, "wmload: fleet sweep: %d nodes, %d owners, %d requests/phase, %d workers\n",
		len(nodes), ownerCount, requests, concurrency)

	// One round-robin warmup pass per phase target, then the measured
	// phase: every request is a detect of tenant (i mod owners)'s own
	// suspect. The baseline sees every tenant through one cache; the
	// fleet phase routes each tenant to its home node.
	phase := func(pick func(t *fleetTenant) (url string, body []byte)) (time.Duration, []time.Duration, float64, int) {
		for _, t := range tenants {
			url, body := pick(t)
			post(client, t.key, url+"/v1/detect?owner="+t.id, body)
		}
		lat := make([]time.Duration, requests)
		var hits, failed atomic.Int64
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= requests {
						return
					}
					t := tenants[i%len(tenants)]
					url, body := pick(t)
					t0 := time.Now()
					resp, _, err := post(client, t.key, url+"/v1/detect?owner="+t.id, body)
					lat[i] = time.Since(t0)
					if err != nil {
						failed.Add(1)
						continue
					}
					var v struct {
						CacheHit bool `json:"cache_hit"`
					}
					if json.Unmarshal(resp, &v) == nil && v.CacheHit {
						hits.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		return wall, lat, float64(hits.Load()) / float64(requests), int(failed.Load())
	}

	var rep benchOutput
	rep.Pkg = "wmxml/cmd/wmload"
	rep.Goos, rep.Goarch = runtime.GOOS, runtime.GOARCH
	addPhase := func(name string, wall time.Duration, lat []time.Duration, hitRatio float64, extra map[string]float64) float64 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		rps := float64(len(lat)) / wall.Seconds()
		m := map[string]float64{
			"p50_ns":          float64(pct(lat, 500)),
			"p90_ns":          float64(pct(lat, 900)),
			"p99_ns":          float64(pct(lat, 990)),
			"p999_ns":         float64(pct(lat, 999)),
			"max_ns":          float64(lat[len(lat)-1]),
			"rps":             rps,
			"cache_hit_ratio": hitRatio,
		}
		for k, v := range extra {
			m[k] = v
		}
		rep.Results = append(rep.Results, benchResult{
			Name:       name,
			Iterations: int64(len(lat)),
			NsPerOp:    float64(sum.Nanoseconds()) / float64(len(lat)),
			Metrics:    m,
		})
		return rps
	}

	var baseRPS float64
	if baseline != "" {
		wall, lat, hits, failed := phase(func(t *fleetTenant) (string, []byte) { return baseline, t.markedBaseline })
		if failed > 0 {
			return fmt.Errorf("baseline phase: %d of %d requests failed", failed, requests)
		}
		baseRPS = addPhase("ServerFleetDetect1", wall, lat, hits, map[string]float64{"nodes": 1, "owners": float64(ownerCount)})
	}

	wall, lat, hits, failed := phase(func(t *fleetTenant) (string, []byte) { return t.home, t.marked })
	if failed > 0 {
		return fmt.Errorf("fleet phase: %d of %d requests failed", failed, requests)
	}
	extra := map[string]float64{"nodes": float64(len(nodes)), "owners": float64(ownerCount)}
	fleetRPS := addPhase("ServerFleetDetectN", wall, lat, hits, nil)
	if baseRPS > 0 {
		extra["scaling_x"] = fleetRPS / baseRPS
	}
	for k, v := range extra {
		rep.Results[len(rep.Results)-1].Metrics[k] = v
	}

	// Single-owner warm latency on its home node — the class the PR7
	// p50 gate carries forward: routing must not cost the single-tenant
	// hot path its budget.
	warm := tenants[0]
	post(client, warm.key, warm.home+"/v1/detect?owner="+warm.id, warm.marked)
	wlat := make([]time.Duration, 60)
	for i := range wlat {
		t0 := time.Now()
		if _, _, err := post(client, warm.key, warm.home+"/v1/detect?owner="+warm.id, warm.marked); err != nil {
			return fmt.Errorf("warm single: %w", err)
		}
		wlat[i] = time.Since(t0)
	}
	var wsum time.Duration
	for _, d := range wlat {
		wsum += d
	}
	wwall := wsum
	addPhase("ServerFleetWarmSingle", wwall, wlat, 1, map[string]float64{"nodes": float64(len(nodes))})

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wmload: wrote %s\n", out)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "  %-22s n=%-5d p50=%-10s rps=%-8.1f hit=%.2f scale=%.2fx\n",
			r.Name, r.Iterations, time.Duration(r.Metrics["p50_ns"]), r.Metrics["rps"],
			r.Metrics["cache_hit_ratio"], r.Metrics["scaling_x"])
	}
	return nil
}

// waitHealthy blocks until a daemon's /healthz answers 200.
func waitHealthy(client *http.Client, url string, waitFor time.Duration) error {
	deadline := time.Now().Add(waitFor)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy within %s", url, waitFor)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
