// Command wmload is the load harness for the wmxmld service: it drives
// a running daemon with a configurable mix of embed and detect
// requests, measures latency percentiles per operation class, and
// writes a JSON report in the same shape as cmd/benchjson — so the
// serving numbers (BENCH_PR3.json) sit next to the library benchmarks
// (BENCH_PR2.json) in the benchmark trajectory.
//
// Detect requests are split into two classes on purpose:
//
//   - warm: the exact bytes of an earlier suspect — served from the
//     daemon's content-hash document cache (no reparse, no index
//     build), the path repeated dispute-resolution detections take;
//   - cold: the same document with a cache-busting XML comment
//     appended, which changes the body hash but not the parsed tree —
//     the full parse + index + detect path.
//
// The gap between the two classes is the measured value of the
// server's index LRU.
//
// With --fingerprint-every / --trace-every the mix adds the
// distribution-chain operations: fingerprints rotate over a small
// recipient pool (so the trace candidate list keeps growing mid-run)
// and traces sweep a fingerprinted suspect through the same document
// cache. Every class reports p50/p90/p99/p99.9/max.
//
// Usage:
//
//	wmxmld --addr 127.0.0.1:8484 &
//	wmload --url http://127.0.0.1:8484 --requests 300 --out BENCH_PR3.json
//	wmload --url http://127.0.0.1:8484 --requests 300 \
//	       --fingerprint-every 25 --trace-every 3 --out BENCH_PR4.json
//
// With --nodes the harness instead runs the fleet scaling sweep: many
// tenants, each with its own suspect document, detected round-robin
// against one node (--nodes-baseline) and against the consistent-hash
// fleet — measuring how aggregate cache capacity scales detect
// throughput (see cmd/wmload/fleet.go and README "Running a fleet").
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wmxml"
)

// benchResult mirrors cmd/benchjson's Result.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchOutput mirrors cmd/benchjson's Output.
type benchOutput struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Pkg     string        `json:"pkg,omitempty"`
	Results []benchResult `json:"results"`
}

// sample is one completed request.
type sample struct {
	class    string // "embed", "fingerprint", "detect_warm", "detect_cold", "trace_warm"
	d        time.Duration
	err      error
	detected bool
	accused  bool
	cacheHit bool
}

func main() {
	fs := flag.NewFlagSet("wmload", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8484", "wmxmld base URL")
	owner := fs.String("owner", "load", "owner id to register and drive")
	key := fs.String("key", "load-secret", "owner key")
	mark := fs.String("mark", "(C) wmload", "owner mark")
	dataset := fs.String("dataset", "pubs", "dataset preset: pubs | jobs | library | nested")
	size := fs.Int("size", 300, "records in the generated document")
	seed := fs.Int64("seed", 2005, "generator seed")
	gamma := fs.Int("gamma", 5, "selection ratio")
	requests := fs.Int("requests", 200, "total requests to send")
	concurrency := fs.Int("concurrency", 8, "concurrent client workers")
	embedEvery := fs.Int("embed-every", 10, "one embed per N requests (rest are detects)")
	coldEvery := fs.Int("cold-every", 4, "every Nth detect busts the document cache")
	fpEvery := fs.Int("fingerprint-every", 0, "one fingerprint (rotating recipient) per N requests (0 = off)")
	traceEvery := fs.Int("trace-every", 0, "every Nth detect slot runs a /v1/trace sweep instead (0 = off)")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	waitFor := fs.Duration("wait", 10*time.Second, "how long to wait for /healthz before giving up")
	hugedoc := fs.Int("hugedoc", 0, "run the local streaming-vs-in-memory benchmark with a huge document of N records instead of driving a daemon (0 = off)")
	hugedocReps := fs.Int("hugedoc-reps", 11, "repetitions per small-document class in --hugedoc mode")
	deliver := fs.Int("deliver", 0, "run the local plan-splice delivery sweep for N recipients instead of driving a daemon (0 = off)")
	deliverReps := fs.Int("deliver-reps", 9, "repetitions of the plan compile and full-embed baseline in --deliver mode")
	scrape := fs.Bool("scrape", false, "fetch /metrics after the run, embed key server-side series into the report, and print the stage breakdown")
	nodes := fs.String("nodes", "", "comma-separated fleet node URLs: run the multi-node scaling sweep instead of the single-daemon mix")
	nodesBaseline := fs.String("nodes-baseline", "", "single-node baseline URL for the --nodes sweep's scaling_x ratio")
	fleetOwners := fs.Int("fleet-owners", 24, "tenants in the --nodes sweep (pick it above the per-node --cache so one node thrashes)")
	fleetRequests := fs.Int("fleet-requests", 240, "detect requests per --nodes sweep phase")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if *nodes != "" {
		if err := runFleet(*nodes, *nodesBaseline, *fleetOwners, *fleetRequests, *concurrency,
			*dataset, *size, *seed, *gamma, *out, *waitFor); err != nil {
			fmt.Fprintf(os.Stderr, "wmload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *deliver > 0 {
		if err := runDeliver(*dataset, *size, *deliver, *seed, *gamma, *deliverReps, *out); err != nil {
			fmt.Fprintf(os.Stderr, "wmload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *hugedoc > 0 {
		if err := runHugeDoc(*dataset, *size, *hugedoc, *seed, *gamma, *hugedocReps, *out); err != nil {
			fmt.Fprintf(os.Stderr, "wmload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*url, *owner, *key, *mark, *dataset, *size, *seed, *gamma,
		*requests, *concurrency, *embedEvery, *coldEvery, *fpEvery, *traceEvery, *out, *waitFor, *scrape); err != nil {
		fmt.Fprintf(os.Stderr, "wmload: %v\n", err)
		os.Exit(1)
	}
}

func run(url, owner, key, mark, dataset string, size int, seed int64, gamma,
	requests, concurrency, embedEvery, coldEvery, fpEvery, traceEvery int, out string, waitFor time.Duration, scrape bool) error {
	client := &http.Client{Timeout: 2 * time.Minute}

	// 1. Wait for the daemon.
	deadline := time.Now().Add(waitFor)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy within %s", url, waitFor)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// 2. Register the owner.
	reg, _ := json.Marshal(wmxml.Owner{ID: owner, Key: key, Mark: mark, Dataset: dataset, Gamma: gamma})
	if _, _, err := post(client, key, url+"/v1/owners", reg); err != nil {
		return fmt.Errorf("register owner: %w", err)
	}

	// 3. Generate the workload document and produce the marked suspect.
	doc, err := generate(dataset, size, seed)
	if err != nil {
		return err
	}
	marked, _, err := post(client, key, url+"/v1/embed?owner="+owner+"&doc=wmload.xml", doc)
	if err != nil {
		return fmt.Errorf("warmup embed: %w", err)
	}
	// Prime the cache so "warm" means warm from the first measured
	// request onward.
	if _, _, err := post(client, key, url+"/v1/detect?owner="+owner, marked); err != nil {
		return fmt.Errorf("warmup detect: %w", err)
	}
	// With fingerprint/trace in the mix, seed the distribution: one
	// fingerprinted copy is both the trace suspect and the guarantee of
	// a non-empty candidate list. The warm trace primes its cache entry.
	var traced []byte
	if fpEvery > 0 || traceEvery > 0 {
		traced, _, err = post(client, key, url+"/v1/fingerprint?owner="+owner+"&recipient=fp-leaker", doc)
		if err != nil {
			return fmt.Errorf("warmup fingerprint: %w", err)
		}
		if _, _, err := post(client, key, url+"/v1/trace?owner="+owner, traced); err != nil {
			return fmt.Errorf("warmup trace: %w", err)
		}
	}

	// 4. Fire the measured load.
	fmt.Fprintf(os.Stderr, "wmload: %d requests, %d workers, 1 embed per %d, 1 cold detect per %d detects, 1 fingerprint per %d, 1 trace per %d detects\n",
		requests, concurrency, embedEvery, coldEvery, fpEvery, traceEvery)
	samples := make([]sample, requests)
	var next atomic.Int64
	var detects atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				samples[i] = fire(client, url, owner, key, i, embedEvery, coldEvery, fpEvery, traceEvery, &detects, doc, marked, traced)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	// 5. Per-class allocation calibration: a short serial pass per
	// class, reading process-global MemStats deltas around it. These
	// are client-side numbers (request build + HTTP round trip +
	// response decode — the daemon is another process); the
	// machine-independent server-path allocation counts come from
	// LocalDecodeWarm below and the library's AllocsPerRun tests. They
	// still make every class self-describing and catch allocation
	// regressions in the harness's own hot loop.
	allocs := calibrateAllocs(client, url, owner, key, doc, marked, traced, embedEvery, coldEvery, fpEvery, traceEvery)

	// 6. Aggregate and report.
	rep := report(samples, wall, allocs)
	rep.Pkg = "wmxml/cmd/wmload"
	rep.Goos, rep.Goarch = runtime.GOOS, runtime.GOARCH
	if lr, lerr := localDecodeResult(dataset, size, seed, gamma, 50); lerr == nil {
		rep.Results = append(rep.Results, lr)
	} else {
		fmt.Fprintf(os.Stderr, "wmload: local decode class skipped: %v\n", lerr)
	}
	if scrape {
		if sr, serr := scrapeResult(client, url); serr == nil {
			rep.Results = append(rep.Results, sr)
			printStageBreakdown(sr)
			printSLOSummary(sr)
		} else {
			fmt.Fprintf(os.Stderr, "wmload: metrics scrape skipped: %v\n", serr)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wmload: wrote %s\n", out)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "  %-16s n=%-5d mean=%-10s p50=%-10s p99=%s\n",
			r.Name, r.Iterations, time.Duration(r.NsPerOp), time.Duration(r.Metrics["p50_ns"]), time.Duration(r.Metrics["p99_ns"]))
	}
	var failed int
	for _, s := range samples {
		if s.err != nil {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed", failed, requests)
	}
	return nil
}

// generate builds the workload document locally (same presets as the
// server).
func generate(dataset string, size int, seed int64) ([]byte, error) {
	ds, err := wmxml.DatasetByName(dataset, size, seed)
	if err != nil {
		return nil, err
	}
	return []byte(wmxml.SerializeXMLString(ds.Doc)), nil
}

// fire sends one request and classifies the sample. Embeds reuse the
// original body (idempotent on the server); detects use the marked
// suspect, every coldEvery-th with a cache-busting comment appended —
// the comment changes the content hash but is dropped by the parser,
// so the cold path measures parse + index build + detect on an
// identical tree. With the PR4 mix enabled, fingerprints rotate over a
// small recipient pool (growing the trace candidate list) and traces
// sweep the fingerprinted suspect warm — the path whose cost must stay
// flat as recipients accumulate.
func fire(client *http.Client, url, owner, key string, i, embedEvery, coldEvery, fpEvery, traceEvery int,
	detects *atomic.Int64, doc, marked, traced []byte) sample {
	if embedEvery > 0 && i%embedEvery == 0 {
		t0 := time.Now()
		_, _, err := post(client, key, url+"/v1/embed?owner="+owner+"&doc=wmload.xml", doc)
		return sample{class: "embed", d: time.Since(t0), err: err}
	}
	// Offset by one so fingerprints don't collide with the embed slot;
	// the modulo of the offset keeps --fingerprint-every 1 firing on
	// every non-embed request instead of never.
	if fpEvery > 0 && i%fpEvery == 1%fpEvery {
		recipient := fmt.Sprintf("fp-%d", (i/fpEvery)%8)
		t0 := time.Now()
		_, _, err := post(client, key, url+"/v1/fingerprint?owner="+owner+"&recipient="+recipient, doc)
		return sample{class: "fingerprint", d: time.Since(t0), err: err}
	}
	n := detects.Add(1)
	if traceEvery > 0 && n%int64(traceEvery) == 0 {
		t0 := time.Now()
		resp, _, err := post(client, key, url+"/v1/trace?owner="+owner, traced)
		s := sample{class: "trace_warm", d: time.Since(t0), err: err}
		if err == nil {
			var v struct {
				Accused  []string `json:"accused"`
				CacheHit bool     `json:"cache_hit"`
			}
			if jerr := json.Unmarshal(resp, &v); jerr == nil {
				s.accused, s.cacheHit = len(v.Accused) > 0, v.CacheHit
			}
		}
		return s
	}
	body := marked
	class := "detect_warm"
	if coldEvery > 0 && n%int64(coldEvery) == 0 {
		body = append(bytes.Clone(marked), []byte(fmt.Sprintf("\n<!-- wmload-cold-%d -->", n))...)
		class = "detect_cold"
	}
	t0 := time.Now()
	resp, _, err := post(client, key, url+"/v1/detect?owner="+owner, body)
	s := sample{class: class, d: time.Since(t0), err: err}
	if err == nil {
		var v struct {
			Detected bool `json:"detected"`
			CacheHit bool `json:"cache_hit"`
		}
		if jerr := json.Unmarshal(resp, &v); jerr == nil {
			s.detected, s.cacheHit = v.Detected, v.CacheHit
		}
	}
	return s
}

// calibrateAllocs runs a short serial pass per active request class
// and returns {allocs, bytes} per op from MemStats deltas (Mallocs and
// TotalAlloc are monotonic, so GC timing cannot skew the delta). The
// pass runs after the measured load so it never perturbs the latency
// samples; one unmeasured warm-up request per class absorbs lazy
// client-side initialization.
func calibrateAllocs(client *http.Client, url, owner, key string, doc, marked, traced []byte,
	embedEvery, coldEvery, fpEvery, traceEvery int) map[string][2]float64 {
	classes := []struct {
		name string
		on   bool
		do   func(i int) error
	}{
		{"embed", embedEvery > 0, func(int) error {
			_, _, err := post(client, key, url+"/v1/embed?owner="+owner+"&doc=wmload.xml", doc)
			return err
		}},
		{"fingerprint", fpEvery > 0, func(int) error {
			_, _, err := post(client, key, url+"/v1/fingerprint?owner="+owner+"&recipient=fp-0", doc)
			return err
		}},
		{"detect_warm", true, func(int) error {
			_, _, err := post(client, key, url+"/v1/detect?owner="+owner, marked)
			return err
		}},
		{"detect_cold", coldEvery > 0, func(i int) error {
			body := append(bytes.Clone(marked), []byte(fmt.Sprintf("\n<!-- wmload-calib-%d -->", i))...)
			_, _, err := post(client, key, url+"/v1/detect?owner="+owner, body)
			return err
		}},
		{"trace_warm", traceEvery > 0 && traced != nil, func(int) error {
			_, _, err := post(client, key, url+"/v1/trace?owner="+owner, traced)
			return err
		}},
	}
	const reps = 8
	out := make(map[string][2]float64, len(classes))
	var ms0, ms1 runtime.MemStats
	for _, c := range classes {
		if !c.on || c.do(0) != nil {
			continue
		}
		ok := 0
		runtime.ReadMemStats(&ms0)
		for i := 1; i <= reps; i++ {
			if c.do(i) == nil {
				ok++
			}
		}
		runtime.ReadMemStats(&ms1)
		if ok > 0 {
			out[c.name] = [2]float64{
				float64(ms1.Mallocs-ms0.Mallocs) / float64(ok),
				float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(ok),
			}
		}
	}
	return out
}

// post sends a body with the owner-key credential and returns the
// response bytes; non-2xx is an error carrying the response text.
func post(client *http.Client, key, url string, body []byte) ([]byte, http.Header, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("Authorization", "Bearer "+key)
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, nil, fmt.Errorf("%s: %d %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	return data, resp.Header, nil
}

// scrapeResult fetches the daemon's /metrics exposition and folds the
// series that explain the latency classes above into one benchjson
// result: per-stage mean latencies from the wmxmld_stage_seconds
// histograms, cache hit/miss counts, op totals, and the self-observing
// runtime's verdicts — the service-aggregate SLO burn rates
// (owner="_total") per objective and window, plus the capture-bundle
// count. Where the client samples say how long a request took, this
// says where the time went — server-side, from the same run — and
// whether the run itself breached the daemon's declared objectives.
func scrapeResult(client *http.Client, url string) (benchResult, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return benchResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return benchResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return benchResult{}, fmt.Errorf("/metrics: %d", resp.StatusCode)
	}
	m := map[string]float64{}
	stageSum := map[string]float64{}
	stageCount := map[string]float64{}
	scalars := map[string]string{
		"wmxmld_doc_cache_hits_total":    "doc_cache_hits",
		"wmxmld_doc_cache_misses_total":  "doc_cache_misses",
		"wmxmld_plan_cache_hits_total":   "plan_cache_hits",
		"wmxmld_plan_cache_misses_total": "plan_cache_misses",
		"wmxmld_embeds_total":            "embeds",
		"wmxmld_detects_total":           "detects",
		"wmxmld_fingerprints_total":      "fingerprints",
		"wmxmld_traces_total":            "traces",
		"wmxmld_delivers_total":          "delivers",
		"wmxmld_uptime_seconds":          "uptime_seconds",
		"wmxmld_captures_total":          "captures",
		"wmxmld_go_goroutines":           "go_goroutines",
		"wmxmld_go_heap_live_bytes":      "go_heap_live_bytes",
	}
	for _, line := range strings.Split(string(data), "\n") {
		name, labels, value, ok := parsePromLine(line)
		if !ok {
			continue
		}
		switch name {
		case "wmxmld_stage_seconds_sum":
			stageSum[labels["stage"]] += value
		case "wmxmld_stage_seconds_count":
			stageCount[labels["stage"]] += value
		case "wmxmld_slo_burn_rate", "wmxmld_slo_budget_remaining":
			if labels["owner"] != "_total" {
				continue
			}
			kind := "burn"
			if name == "wmxmld_slo_budget_remaining" {
				kind = "budget"
			}
			m["slo_"+labels["slo"]+"_"+kind+"_"+labels["window"]] = value
		default:
			if key, want := scalars[name]; want {
				m[key] = value
			}
		}
	}
	for stage, n := range stageCount {
		if n > 0 {
			m["stage_"+stage+"_mean_ns"] = stageSum[stage] / n * 1e9
			m["stage_"+stage+"_count"] = n
		}
	}
	if len(m) == 0 {
		return benchResult{}, fmt.Errorf("/metrics exposition had no recognized series")
	}
	return benchResult{Name: "ServerScrape", Iterations: 1, Metrics: m}, nil
}

// printStageBreakdown writes the scraped per-stage means to stderr,
// slowest first.
func printStageBreakdown(r benchResult) {
	type row struct {
		stage string
		mean  float64
		count float64
	}
	var rows []row
	for k, v := range r.Metrics {
		if stage, found := strings.CutPrefix(k, "stage_"); found {
			if stage, found = strings.CutSuffix(stage, "_mean_ns"); found {
				rows = append(rows, row{stage, v, r.Metrics["stage_"+stage+"_count"]})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mean > rows[j].mean })
	fmt.Fprintf(os.Stderr, "wmload: server stage breakdown (/metrics):\n")
	for _, rw := range rows {
		fmt.Fprintf(os.Stderr, "  stage %-14s n=%-6.0f mean=%s\n", rw.stage, rw.count, time.Duration(rw.mean))
	}
}

// printSLOSummary writes the daemon's service-aggregate SLO verdict
// for the run: burn rate and budget remaining per objective and
// window, plus the capture-bundle count if the watchdog fired. Silent
// when the daemon predates the SLO engine (no series scraped).
func printSLOSummary(r benchResult) {
	type objective struct{ slo, label string }
	objectives := []objective{
		{"detect_p99", "detect p99"},
		{"error_ratio", "error ratio"},
	}
	shown := false
	for _, o := range objectives {
		fastBurn, ok := r.Metrics["slo_"+o.slo+"_burn_5m"]
		if !ok {
			continue
		}
		if !shown {
			fmt.Fprintf(os.Stderr, "wmload: server SLO summary (owner=_total):\n")
			shown = true
		}
		fmt.Fprintf(os.Stderr, "  slo %-11s burn 5m=%-8.3g 1h=%-8.3g budget 5m=%-8.3g 1h=%.3g\n",
			o.label, fastBurn, r.Metrics["slo_"+o.slo+"_burn_1h"],
			r.Metrics["slo_"+o.slo+"_budget_5m"], r.Metrics["slo_"+o.slo+"_budget_1h"])
	}
	if n, ok := r.Metrics["captures"]; ok && shown {
		fmt.Fprintf(os.Stderr, "  capture bundles written: %.0f\n", n)
	}
}

// parsePromLine parses one Prometheus text-format sample line into
// name, labels and value. Comment lines, blank lines and malformed
// lines report ok=false. Label values are unescaped enough for the
// label vocabulary wmxmld emits (no embedded quotes or newlines).
func parsePromLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", nil, 0, false
	}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, false
		}
		name = line[:i]
		labels = map[string]string{}
		for _, pair := range strings.Split(line[i+1:j], ",") {
			k, v, found := strings.Cut(pair, "=")
			if !found {
				continue
			}
			labels[strings.TrimSpace(k)] = strings.Trim(strings.TrimSpace(v), `"`)
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var found bool
		name, rest, found = strings.Cut(line, " ")
		if !found {
			return "", nil, 0, false
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// report folds samples into benchjson-shaped results; allocs carries
// the per-class {allocs_per_op, bytes_per_op} calibration.
func report(samples []sample, wall time.Duration, allocs map[string][2]float64) benchOutput {
	byClass := map[string][]sample{}
	for _, s := range samples {
		if s.err != nil {
			continue
		}
		byClass[s.class] = append(byClass[s.class], s)
	}
	var out benchOutput
	var okTotal int
	for _, class := range []string{"embed", "fingerprint", "detect_warm", "detect_cold", "trace_warm"} {
		ss := byClass[class]
		if len(ss) == 0 {
			continue
		}
		okTotal += len(ss)
		ds := make([]time.Duration, len(ss))
		var sum time.Duration
		var detected, accused, cacheHits int
		for i, s := range ss {
			ds[i] = s.d
			sum += s.d
			if s.detected {
				detected++
			}
			if s.accused {
				accused++
			}
			if s.cacheHit {
				cacheHits++
			}
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		m := map[string]float64{
			"p50_ns":  float64(pct(ds, 500)),
			"p90_ns":  float64(pct(ds, 900)),
			"p99_ns":  float64(pct(ds, 990)),
			"p999_ns": float64(pct(ds, 999)),
			"max_ns":  float64(ds[len(ds)-1]),
		}
		if a, ok := allocs[class]; ok {
			m["allocs_per_op"] = a[0]
			m["bytes_per_op"] = a[1]
		}
		switch class {
		case "detect_warm", "detect_cold":
			m["detected_ratio"] = float64(detected) / float64(len(ss))
			m["cache_hit_ratio"] = float64(cacheHits) / float64(len(ss))
		case "trace_warm":
			m["accused_ratio"] = float64(accused) / float64(len(ss))
			m["cache_hit_ratio"] = float64(cacheHits) / float64(len(ss))
		}
		out.Results = append(out.Results, benchResult{
			Name:       "Server" + camel(class),
			Iterations: int64(len(ss)),
			NsPerOp:    float64(sum.Nanoseconds()) / float64(len(ss)),
			Metrics:    m,
		})
	}
	var failed int
	for _, s := range samples {
		if s.err != nil {
			failed++
		}
	}
	out.Results = append(out.Results, benchResult{
		Name:       "ServerOverall",
		Iterations: int64(len(samples)),
		NsPerOp:    float64(wall.Nanoseconds()) / float64(max(1, len(samples))),
		Metrics: map[string]float64{
			"rps":    float64(okTotal) / wall.Seconds(),
			"errors": float64(failed),
		},
	})
	return out
}

// pct picks a percentile, in permille for tail resolution (500 = p50,
// 999 = p99.9), from an ascending slice.
func pct(ds []time.Duration, permille int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	i := (len(ds) - 1) * permille / 1000
	return ds[i]
}

// camel maps a class name to its result suffix.
func camel(class string) string {
	switch class {
	case "embed":
		return "Embed"
	case "fingerprint":
		return "Fingerprint"
	case "detect_warm":
		return "DetectWarm"
	case "detect_cold":
		return "DetectCold"
	case "trace_warm":
		return "TraceWarm"
	}
	return class
}
