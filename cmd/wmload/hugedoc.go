package main

// The hugedoc benchmark class: a local (no daemon) comparison of the
// streaming and in-memory watermarking paths, plus a huge-document
// streaming run whose peak heap must stay far below document size.
// Results land in the same benchjson shape as the serving classes, so
// BENCH_PR5.json sits next to BENCH_PR2..4 in the benchmark
// trajectory.
//
// Classes:
//
//   - EmbedMem1k / EmbedStream1k, DetectMem1k / DetectStream1k: the
//     full file-to-output pipeline (read, parse/scan, embed or blind
//     detect, serialize) on a small document, repeated for percentiles.
//     The *_ratio_stream_vs_mem metric is the acceptance figure:
//     streaming p50 is expected within 2× of the in-memory path.
//   - HugeStreamEmbed / HugeStreamDetect: one streamed pass over an
//     N-record document, reporting peak_heap_bytes (sampled), document
//     size, chunk count and the detection verdict.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"wmxml"
)

// heapSampler tracks the high-water HeapAlloc mark while running.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak.Load() {
					s.peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return s
}

func (s *heapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// timed runs fn reps times and returns sorted durations.
func timed(reps int, fn func() error) ([]time.Duration, error) {
	ds := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return nil, err
		}
		ds = append(ds, time.Since(t0))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds, nil
}

func durResult(name string, ds []time.Duration, extra map[string]float64) benchResult {
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	m := map[string]float64{
		"p50_ns":  float64(pct(ds, 500)),
		"p90_ns":  float64(pct(ds, 900)),
		"p99_ns":  float64(pct(ds, 990)),
		"p999_ns": float64(pct(ds, 999)),
		"max_ns":  float64(ds[len(ds)-1]),
	}
	for k, v := range extra {
		m[k] = v
	}
	return benchResult{
		Name:       name,
		Iterations: int64(len(ds)),
		NsPerOp:    float64(sum.Nanoseconds()) / float64(len(ds)),
		Metrics:    m,
	}
}

// writeDatasetFile generates a dataset document straight to disk and
// releases the tree before returning.
func writeDatasetFile(dataset string, size int, seed int64, path string) (int64, error) {
	ds, err := wmxml.DatasetByName(dataset, size, seed)
	if err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := wmxml.SerializeXML(f, ds.Doc); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	ds = nil
	runtime.GC()
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// runHugeDoc runs the local streaming-vs-in-memory benchmark and the
// huge-document streaming pass, writing a benchjson report.
func runHugeDoc(dataset string, smallSize, hugeSize int, seed int64, gamma, reps int, out string) error {
	if reps <= 0 {
		reps = 11
	}
	dir, err := os.MkdirTemp("", "wmload-hugedoc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ds, err := wmxml.DatasetByName(dataset, 1, 0)
	if err != nil {
		return err
	}
	sys, err := wmxml.New(wmxml.Options{
		Key: "hugedoc-key", Mark: "(C) hugedoc", Gamma: gamma,
		Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()

	// --- small-document comparison ---
	smallPath := filepath.Join(dir, "small.xml")
	if _, err := writeDatasetFile(dataset, smallSize, seed, smallPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wmload hugedoc: small=%d records × %d reps, huge=%d records (%s)\n", smallSize, reps, hugeSize, dataset)

	embedMem := func() error {
		f, err := os.Open(smallPath)
		if err != nil {
			return err
		}
		defer f.Close()
		doc, err := wmxml.ParseXML(f)
		if err != nil {
			return err
		}
		if _, err := sys.Embed(doc); err != nil {
			return err
		}
		return wmxml.SerializeXML(io.Discard, doc)
	}
	embedStream := func() error {
		f, err := os.Open(smallPath)
		if err != nil {
			return err
		}
		defer f.Close()
		_, _, err = sys.EmbedStreamContext(ctx, f, io.Discard, wmxml.StreamOptions{})
		return err
	}
	// A marked copy for detection.
	markedPath := filepath.Join(dir, "small-marked.xml")
	mf, err := os.Create(markedPath)
	if err != nil {
		return err
	}
	sf, err := os.Open(smallPath)
	if err != nil {
		return err
	}
	if _, _, err := sys.EmbedStreamContext(ctx, sf, mf, wmxml.StreamOptions{}); err != nil {
		return err
	}
	sf.Close()
	if err := mf.Close(); err != nil {
		return err
	}
	detectMem := func() error {
		f, err := os.Open(markedPath)
		if err != nil {
			return err
		}
		defer f.Close()
		doc, err := wmxml.ParseXML(f)
		if err != nil {
			return err
		}
		det, err := sys.DetectBlind(doc)
		if err != nil {
			return err
		}
		if !det.Detected {
			return fmt.Errorf("in-memory detect missed the mark")
		}
		return nil
	}
	detectStream := func() error {
		f, err := os.Open(markedPath)
		if err != nil {
			return err
		}
		defer f.Close()
		det, _, err := sys.DetectBlindStreamContext(ctx, f, wmxml.StreamOptions{})
		if err != nil {
			return err
		}
		if !det.Detected {
			return fmt.Errorf("streamed detect missed the mark")
		}
		return nil
	}

	var rep benchOutput
	rep.Pkg = "wmxml/cmd/wmload"
	rep.Goos, rep.Goarch = runtime.GOOS, runtime.GOARCH
	type phase struct {
		name string
		fn   func() error
	}
	phases := []phase{
		{"HugedocEmbedMem1k", embedMem},
		{"HugedocEmbedStream1k", embedStream},
		{"HugedocDetectMem1k", detectMem},
		{"HugedocDetectStream1k", detectStream},
	}
	p50s := map[string]float64{}
	for _, ph := range phases {
		runtime.GC()
		hs := startHeapSampler()
		ds, err := timed(reps, ph.fn)
		peak := hs.Stop()
		if err != nil {
			return fmt.Errorf("%s: %w", ph.name, err)
		}
		r := durResult(ph.name, ds, map[string]float64{"peak_heap_bytes": float64(peak)})
		p50s[ph.name] = r.Metrics["p50_ns"]
		rep.Results = append(rep.Results, r)
	}
	// The acceptance ratios.
	for i := range rep.Results {
		switch rep.Results[i].Name {
		case "HugedocEmbedStream1k":
			rep.Results[i].Metrics["p50_ratio_stream_vs_mem"] = p50s["HugedocEmbedStream1k"] / p50s["HugedocEmbedMem1k"]
		case "HugedocDetectStream1k":
			rep.Results[i].Metrics["p50_ratio_stream_vs_mem"] = p50s["HugedocDetectStream1k"] / p50s["HugedocDetectMem1k"]
		}
	}

	// --- huge-document streamed pass ---
	if hugeSize > 0 {
		hugePath := filepath.Join(dir, "huge.xml")
		hugeBytes, err := writeDatasetFile(dataset, hugeSize, seed+1, hugePath)
		if err != nil {
			return err
		}
		hugeMarked := filepath.Join(dir, "huge-marked.xml")

		runtime.GC()
		hs := startHeapSampler()
		t0 := time.Now()
		in, err := os.Open(hugePath)
		if err != nil {
			return err
		}
		outF, err := os.Create(hugeMarked)
		if err != nil {
			return err
		}
		_, stats, err := sys.EmbedStreamContext(ctx, in, outF, wmxml.StreamOptions{})
		in.Close()
		if cerr := outF.Close(); err == nil {
			err = cerr
		}
		embedDur := time.Since(t0)
		embedPeak := hs.Stop()
		if err != nil {
			return fmt.Errorf("huge stream embed: %w", err)
		}
		if !stats.Streamed {
			return fmt.Errorf("huge embed fell back to in-memory: %s", stats.FallbackReason)
		}
		rep.Results = append(rep.Results, benchResult{
			Name: "HugedocStreamEmbed", Iterations: 1,
			NsPerOp: float64(embedDur.Nanoseconds()),
			Metrics: map[string]float64{
				"peak_heap_bytes": float64(embedPeak),
				"doc_bytes":       float64(hugeBytes),
				"records":         float64(stats.Records),
				"chunks":          float64(stats.Chunks),
			},
		})

		runtime.GC()
		hs = startHeapSampler()
		t0 = time.Now()
		mIn, err := os.Open(hugeMarked)
		if err != nil {
			return err
		}
		det, dstats, err := sys.DetectBlindStreamContext(ctx, mIn, wmxml.StreamOptions{})
		mIn.Close()
		detectDur := time.Since(t0)
		detectPeak := hs.Stop()
		if err != nil {
			return fmt.Errorf("huge stream detect: %w", err)
		}
		if !det.Detected {
			return fmt.Errorf("huge stream detect: mark not found (match=%.3f coverage=%.3f)", det.MatchFraction, det.Coverage)
		}
		rep.Results = append(rep.Results, benchResult{
			Name: "HugedocStreamDetect", Iterations: 1,
			NsPerOp: float64(detectDur.Nanoseconds()),
			Metrics: map[string]float64{
				"peak_heap_bytes": float64(detectPeak),
				"doc_bytes":       float64(hugeBytes),
				"records":         float64(dstats.Records),
				"chunks":          float64(dstats.Chunks),
				"detected":        1,
				"match_fraction":  det.MatchFraction,
				"coverage":        det.Coverage,
			},
		})
		fmt.Fprintf(os.Stderr, "wmload hugedoc: %d records (%.1f MiB): stream embed %s (peak heap %.1f MiB), stream detect %s (peak heap %.1f MiB), detected=true\n",
			hugeSize, float64(hugeBytes)/(1<<20), embedDur.Round(time.Millisecond), float64(embedPeak)/(1<<20),
			detectDur.Round(time.Millisecond), float64(detectPeak)/(1<<20))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wmload: wrote %s\n", out)
	}
	for _, r := range rep.Results {
		line := fmt.Sprintf("  %-24s n=%-4d mean=%-12s", r.Name, r.Iterations, time.Duration(r.NsPerOp))
		if v, ok := r.Metrics["p50_ns"]; ok {
			line += fmt.Sprintf(" p50=%-12s", time.Duration(v))
		}
		if v, ok := r.Metrics["p50_ratio_stream_vs_mem"]; ok {
			line += fmt.Sprintf(" stream/mem=%.2f", v)
		}
		if v, ok := r.Metrics["peak_heap_bytes"]; ok {
			line += fmt.Sprintf(" peak_heap=%.1fMiB", v/(1<<20))
		}
		fmt.Fprintln(os.Stderr, line)
	}
	return nil
}
