// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, for machine-readable benchmark trajectories
// (CI writes BENCH_PR2.json with it).
//
// Usage:
//
//	go test -bench 'BenchmarkDetect10k' -benchtime 1x . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole report.
type Output struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var out Output
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				out.Results = append(out.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkX-8  10  123 ns/op  4 queries" into a
// Result; the unit after each value names the metric.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[unit] = v
	}
	return r, true
}
