// Command wmbench regenerates every experiment table of EXPERIMENTS.md.
//
// Usage:
//
//	wmbench [--books 400] [--trials 10] [--bits 64] [--seed 2005]
//	        [--exp all|ablations|E1..E8|F1|A1..A3|S1|C1] [--markdown]
//
// The defaults reproduce the committed EXPERIMENTS.md; smaller --books /
// --trials give a quick look at the shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wmxml/internal/experiments"
)

func main() {
	books := flag.Int("books", 400, "publications dataset size")
	trials := flag.Int("trials", 10, "trials per randomized sweep point")
	bits := flag.Int("bits", 64, "watermark length in bits")
	seed := flag.Int64("seed", 2005, "experiment seed")
	exp := flag.String("exp", "all", "experiment to run: all, E1..E8, F1, A1..A3, S1, C1")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	flag.Parse()

	p := experiments.Params{Books: *books, Trials: *trials, MarkBits: *bits, Seed: *seed}

	runners := map[string]func(experiments.Params) (*experiments.Table, error){
		"E1": experiments.E1Capacity,
		"E2": experiments.E2Alteration,
		"E3": experiments.E3Reduction,
		"E4": experiments.E4Reorganization,
		"E5": experiments.E5RedundancyRemoval,
		"E6": experiments.E6RewriteFidelity,
		"E7": experiments.E7Frontier,
		"E8": experiments.E8FalsePositive,
		"F1": experiments.F1InfoPreservation,
		"A1": experiments.A1ChannelComparison,
		"A2": experiments.A2TauSweep,
		"A3": experiments.A3XiBitFlip,
		"S1": experiments.S1Scalability,
		"C1": experiments.C1Collusion,
	}

	var tables []*experiments.Table
	if strings.EqualFold(*exp, "all") {
		all, err := experiments.All(p)
		if err != nil {
			fail(err)
		}
		abl, err := experiments.Ablations(p)
		if err != nil {
			fail(err)
		}
		tables = append(all, abl...)
		scale, err := experiments.S1Scalability(p)
		if err != nil {
			fail(err)
		}
		tables = append(tables, scale)
	} else if strings.EqualFold(*exp, "ablations") {
		abl, err := experiments.Ablations(p)
		if err != nil {
			fail(err)
		}
		tables = abl
	} else {
		run, ok := runners[strings.ToUpper(*exp)]
		if !ok {
			fail(fmt.Errorf("unknown experiment %q", *exp))
		}
		t, err := run(p)
		if err != nil {
			fail(err)
		}
		tables = []*experiments.Table{t}
	}

	fmt.Printf("WmXML experiment harness — books=%d trials=%d bits=%d seed=%d\n\n",
		*books, *trials, *bits, *seed)
	for _, t := range tables {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			t.Render(os.Stdout)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wmbench: %v\n", err)
	os.Exit(1)
}
