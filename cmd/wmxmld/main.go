// Command wmxmld is the WmXML watermarking daemon: a multi-tenant HTTP
// service that embeds watermarks into XML documents as they are
// published and detects them later from the receipt registry alone —
// no query sets change hands after embedding.
//
// Usage:
//
//	wmxmld [--addr :8484] [--registry wmxml.jsonl] [--workers N]
//	       [--cache N] [--doc-cache-bytes BYTES] [--max-body BYTES]
//	       [--max-depth N] [--queue-timeout 10s] [--no-sync]
//	       [--compact-on-start] [--insecure-no-auth] [--pprof-addr ADDR]
//	       [--log-level info] [--log-format json] [--trace-ring 32]
//	       [--slo-detect-p99 250ms] [--slo-error-ratio 0.01]
//	       [--health-interval 10s] [--watchdog-interval 10s]
//	       [--capture-dir DIR] [--capture-max 8] [--capture-cooldown 5m]
//	       [--capture-cpu 5s] [--drain-delay 0s]
//	       [--registry-backend file|sharded|kv|remote|memory]
//	       [--registry-shards 8] [--registry-url URL]
//	       [--registry-cache-ttl 0s] [--cluster-key KEY]
//	       [--fleet-nodes URL,URL,...] [--fleet-self URL]
//	       [--owner-refresh 0s]
//
// Fleet mode: N stateless wmxmld nodes serve one tenant set. One node
// holds the authoritative registry and exports it with --cluster-key
// (mounting /internal/registry/); the others connect to it with
// --registry-backend remote --registry-url. Every node lists the full
// fleet with --fleet-nodes and names itself with --fleet-self;
// owner-scoped requests landing on the wrong node are proxied to the
// owner's consistent-hash home node, so each owner's parsed documents
// warm exactly one cache. Clients may contact any node. On remote
// nodes set --owner-refresh (and --registry-cache-ttl) to keep
// registry round trips off the request hot path.
//
// API (see README "Running the service" for a curl walkthrough):
//
//	POST /v1/owners                    register a tenant (key, mark, spec)
//	POST /v1/embed?owner=ID[&doc=L]    XML in, marked XML out; receipt stored
//	POST /v1/embed?owner=ID&mode=stream   chunked: huge XML in, marked XML streamed out,
//	                                      receipt id in the X-Wmxml-Receipt trailer
//	POST /v1/detect?owner=ID           suspect XML in, JSON verdict out
//	POST /v1/detect?owner=ID&mode=stream[-blind]  chunked constant-memory detection
//	POST /v1/verify?owner=ID           schema + key/FD verification
//	POST /v1/fingerprint?owner=ID&recipient=R  recipient-coded copy out; recipient registered
//	POST /v1/trace?owner=ID            suspect XML in, ranked accusations out
//	GET  /v1/owners/{id}/receipts      list stored receipts
//	GET  /v1/owners/{id}/recipients    list tracing candidates
//	GET  /healthz                      liveness (includes the build version)
//	GET  /readyz                       readiness: 503 while draining on shutdown
//	                                   or when the registry stops answering
//	GET  /metrics                      Prometheus text metrics
//
// Observability: every request gets an id — a client-sent W3C
// `traceparent` header's trace-id, or a fresh random one — returned in
// the X-Request-Id response header and in every error body. Structured
// logs (one access-log line per request plus full-fidelity error
// records) go to stderr as JSON (--log-format text for logfmt-style
// lines; --log-level debug|info|warn|error). The --pprof-addr listener
// additionally serves GET /debug/traces (the --trace-ring most recent
// and slowest request traces with per-stage timings), GET /debug/slo
// (per-owner SLO burn rates) and GET /debug/captures (the anomaly
// capture-bundle ring).
//
// Self-monitoring: a runtime health collector samples runtime/metrics
// every --health-interval into the wmxmld_go_* series; per-owner SLO
// objectives (--slo-detect-p99, --slo-error-ratio, overridable per
// tenant via the registration record's "slo" field) are evaluated over
// rolling 5m/1h windows into wmxmld_slo_burn_rate and
// wmxmld_slo_budget_remaining; and with --capture-dir set, an anomaly
// watchdog writes capture bundles — pprof heap/goroutine/CPU profiles,
// the slowest traces, metrics and SLO snapshots, the firing rule — to
// a bounded disk ring whenever an objective burns hot in both windows
// or the runtime crosses a memory/goroutine threshold.
//
// Owner-scoped requests authenticate with the owner's secret key:
// `Authorization: Bearer <key>`. Re-registering an existing owner id
// likewise requires the current key. --insecure-no-auth disables the
// check for trusted-network deployments only — with it, any peer that
// can reach the socket can rotate a tenant's key and read its
// safeguarded query sets.
//
// Without --registry all state is in memory and lost on exit; with it,
// owners and receipts live in a crash-safe JSONL log that survives
// restarts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wmxml"
	"wmxml/internal/obs"
	"wmxml/internal/registry"
)

// version is the build stamp, injected at link time:
//
//	go build -ldflags "-X main.version=$(git rev-parse --short HEAD)" ./cmd/wmxmld
//
// It is reported by --version and by the /healthz endpoint.
var version = "dev"

func main() {
	fs := flag.NewFlagSet("wmxmld", flag.ExitOnError)
	showVersion := fs.Bool("version", false, "print the build version and exit")
	addr := fs.String("addr", ":8484", "listen address")
	regPath := fs.String("registry", "", "JSONL registry file (empty: in-memory, lost on exit)")
	noSync := fs.Bool("no-sync", false, "skip per-append fsync on the registry log (throughput over durability)")
	compact := fs.Bool("compact-on-start", false, "compact the registry log after replaying it")
	workers := fs.Int("workers", 0, "max concurrently executing operations (0 = number of CPUs)")
	cache := fs.Int("cache", 0, "suspect-document cache entries (0 = 128, -1 = off)")
	cacheBytes := fs.Int64("doc-cache-bytes", 0, "suspect-document cache byte cap, weighted by body size (0 = 256 MiB, -1 = unbounded)")
	pprofAddr := fs.String("pprof-addr", "", "serve /debug/pprof and /debug/traces on this separate address (empty = off; keep it off the public interface)")
	maxBody := fs.Int64("max-body", 0, "request body cap in bytes (0 = 32 MiB)")
	maxStream := fs.Int64("max-stream", 0, "streaming-endpoint body cap in bytes (0 = 4 GiB)")
	streamChunk := fs.Int("stream-chunk", 0, "records per chunk on the streaming endpoints (0 = 256)")
	maxDepth := fs.Int("max-depth", 0, "XML nesting cap (0 = library default)")
	queueTimeout := fs.Duration("queue-timeout", 10*time.Second, "max wait for a worker slot before 503")
	noAuth := fs.Bool("insecure-no-auth", false, "serve without Bearer-key authentication (trusted networks only)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logFormat := fs.String("log-format", "json", "log line format: json|text")
	traceRing := fs.Int("trace-ring", 0, "request traces retained for /debug/traces (0 = 32, -1 = tracing off)")
	sloDetectP99 := fs.Duration("slo-detect-p99", 0, "default detect latency objective at p99 (0 = 250ms, negative = off; per-owner override via the registration record)")
	sloErrorRatio := fs.Float64("slo-error-ratio", 0, "default tolerated 5xx fraction (0 = 0.01, negative = off)")
	healthInterval := fs.Duration("health-interval", 0, "runtime health sampling period for the wmxmld_go_* series (0 = 10s, negative = off)")
	watchdogInterval := fs.Duration("watchdog-interval", 0, "anomaly rule evaluation period (0 = 10s)")
	captureDir := fs.String("capture-dir", "", "write anomaly capture bundles into this directory's bounded ring (empty = watchdog off)")
	captureMax := fs.Int("capture-max", 0, "capture bundles kept before the oldest is evicted (0 = 8)")
	captureCooldown := fs.Duration("capture-cooldown", 0, "min time between bundles for one firing rule (0 = 5m)")
	captureCPU := fs.Duration("capture-cpu", 0, "CPU profile length recorded into each bundle (0 = 5s, negative = skip)")
	drainDelay := fs.Duration("drain-delay", 0, "how long /readyz answers 503 before listeners close on shutdown (0 = immediate)")
	regBackend := fs.String("registry-backend", "", "registry backend: file|sharded|kv|remote|memory (empty: file when --registry is set, else memory)")
	regShards := fs.Int("registry-shards", 8, "shard count for --registry-backend sharded (fixed at creation)")
	regURL := fs.String("registry-url", "", "base URL of the registry-holding node for --registry-backend remote")
	regCacheTTL := fs.Duration("registry-cache-ttl", 0, "remote-registry read cache TTL (0 = revalidate every read)")
	clusterKey := fs.String("cluster-key", "", "shared fleet secret; serves the node-to-node registry API under /internal/registry/ and authenticates remote registry clients")
	fleetNodes := fs.String("fleet-nodes", "", "comma-separated addresses of every fleet node; enables consistent-hash owner routing")
	fleetSelf := fs.String("fleet-self", "", "this node's own address as listed in --fleet-nodes")
	ownerRefresh := fs.Duration("owner-refresh", 0, "max staleness of a compiled owner runtime before re-reading its registry record (0 = every request)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *showVersion {
		fmt.Printf("wmxmld %s\n", version)
		return
	}
	if _, err := obs.ParseLevel(*logLevel); err != nil {
		fmt.Fprintf(os.Stderr, "wmxmld: %v\n", err)
		os.Exit(2)
	}

	// The daemon's own lifecycle lines go through the same structured
	// logger the server uses for its access log, so stderr is uniformly
	// machine-parseable.
	logger := obs.NewLogger(os.Stderr, obs.LogOptions{Level: *logLevel, Format: *logFormat})

	backend := *regBackend
	if backend == "" {
		if *regPath != "" {
			backend = "file"
		} else {
			backend = "memory"
		}
	}
	fopts := registry.FileOptions{NoSync: *noSync, CompactOnOpen: *compact}
	var store wmxml.ReceiptStore
	var err error
	switch backend {
	case "memory":
		store = wmxml.NewMemoryRegistry()
		logger.Info("in-memory registry (state is lost on exit)")
	case "file":
		if *regPath == "" {
			logger.Error("--registry-backend file requires --registry PATH")
			os.Exit(2)
		}
		store, err = registry.OpenFile(*regPath, fopts)
	case "sharded":
		if *regPath == "" {
			logger.Error("--registry-backend sharded requires --registry DIR")
			os.Exit(2)
		}
		store, err = registry.OpenSharded(*regPath, *regShards, fopts)
	case "kv":
		if *regPath == "" {
			logger.Error("--registry-backend kv requires --registry PATH")
			os.Exit(2)
		}
		store, err = registry.OpenKV(*regPath, fopts)
	case "remote":
		if *regURL == "" || *clusterKey == "" {
			logger.Error("--registry-backend remote requires --registry-url and --cluster-key")
			os.Exit(2)
		}
		store, err = registry.OpenRemote(*regURL, registry.RemoteOptions{Key: *clusterKey, CacheTTL: *regCacheTTL})
	default:
		logger.Error("unknown --registry-backend", "backend", backend)
		os.Exit(2)
	}
	if err != nil {
		logger.Error("registry open failed", "backend", backend, "path", *regPath, "url", *regURL, "error", err.Error())
		os.Exit(1)
	}
	if backend != "memory" {
		defer store.Close()
		owners, _ := store.ListOwners()
		logger.Info("registry opened", "backend", backend, "path", *regPath, "url", *regURL, "owners", len(owners))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *noAuth {
		logger.Warn("running with --insecure-no-auth: any peer can act as any owner")
	}
	if *pprofAddr != "" {
		logger.Info("debug listener", "addr", *pprofAddr, "endpoints", "/debug/pprof/, /debug/traces, /debug/slo, /debug/captures")
	}
	if *captureDir != "" {
		logger.Info("anomaly watchdog armed", "capture_dir", *captureDir)
	}
	var nodes []string
	if *fleetNodes != "" {
		for _, n := range strings.Split(*fleetNodes, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
		if len(nodes) >= 2 && *fleetSelf == "" {
			logger.Error("--fleet-nodes with 2+ nodes requires --fleet-self")
			os.Exit(2)
		}
		logger.Info("fleet routing", "nodes", len(nodes), "self", *fleetSelf)
	}
	logger.Info("listening", "addr", *addr, "version", version)
	err = wmxml.Serve(ctx, wmxml.ServerOptions{
		Addr:                 *addr,
		Registry:             store,
		Workers:              *workers,
		QueueTimeout:         *queueTimeout,
		MaxBodyBytes:         *maxBody,
		MaxStreamBytes:       *maxStream,
		StreamChunkSize:      *streamChunk,
		MaxDepth:             *maxDepth,
		CacheEntries:         *cache,
		CacheBytes:           *cacheBytes,
		AllowUnauthenticated: *noAuth,
		Version:              version,
		LogWriter:            os.Stderr,
		LogLevel:             *logLevel,
		LogFormat:            *logFormat,
		TraceRing:            *traceRing,
		DebugAddr:            *pprofAddr,
		SLODetectP99:         *sloDetectP99,
		SLOErrorRatio:        *sloErrorRatio,
		HealthInterval:       *healthInterval,
		WatchdogInterval:     *watchdogInterval,
		CaptureDir:           *captureDir,
		CaptureMax:           *captureMax,
		CaptureCooldown:      *captureCooldown,
		CaptureCPUProfile:    *captureCPU,
		DrainDelay:           *drainDelay,
		OwnerRefresh:         *ownerRefresh,
		ClusterKey:           *clusterKey,
		FleetNodes:           nodes,
		FleetSelf:            *fleetSelf,
	})
	if err != nil {
		logger.Error("server exited", "error", err.Error())
		os.Exit(1)
	}
	logger.Info("shut down cleanly")
}
