package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// genCorpus writes n small pubs documents into dir.
func genCorpus(t *testing.T, dir string, n int) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		runOK(t, "gen", "--dataset", "pubs", "--size", "80",
			"--seed", strconv.Itoa(i+1),
			"--out", filepath.Join(dir, "doc"+strconv.Itoa(i)+".xml"))
	}
}

func TestCLIBatchEmbedDetect(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "corpus")
	out := filepath.Join(dir, "marked")
	genCorpus(t, in, 5)

	runOK(t, "batch", "--mode", "embed", "--dataset", "pubs", "--in", in,
		"--key", "batch-key", "--mark", "(C) BATCH", "--gamma", "3",
		"--out", out, "--workers", "4")
	for i := 0; i < 5; i++ {
		name := "doc" + strconv.Itoa(i)
		if _, err := os.Stat(filepath.Join(out, name+".xml")); err != nil {
			t.Errorf("missing marked doc: %v", err)
		}
		if _, err := os.Stat(filepath.Join(out, name+".queries.json")); err != nil {
			t.Errorf("missing query set: %v", err)
		}
	}

	// Query-based detection over the marked directory.
	runOK(t, "batch", "--mode", "detect", "--dataset", "pubs", "--in", out,
		"--key", "batch-key", "--mark", "(C) BATCH", "--gamma", "3",
		"--queries", out, "--workers", "4")

	// Blind detection (no --queries).
	runOK(t, "batch", "--mode", "detect", "--dataset", "pubs", "--in", out,
		"--key", "batch-key", "--mark", "(C) BATCH", "--gamma", "3")
}

// TestCLIBatchIsolation: a corrupt file in the corpus fails alone; the
// command reports a batch error but the healthy documents still embed.
func TestCLIBatchIsolation(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "corpus")
	out := filepath.Join(dir, "marked")
	genCorpus(t, in, 3)
	if err := os.WriteFile(filepath.Join(in, "broken.xml"), []byte("<unclosed"), 0o644); err != nil {
		t.Fatal(err)
	}

	err := run("batch", []string{"--mode", "embed", "--dataset", "pubs", "--in", in,
		"--key", "k", "--mark", "M", "--out", out, "--workers", "2"})
	if err == nil {
		t.Fatal("batch with a corrupt file should report failure")
	}
	for i := 0; i < 3; i++ {
		if _, serr := os.Stat(filepath.Join(out, "doc"+strconv.Itoa(i)+".xml")); serr != nil {
			t.Errorf("healthy doc%d was not embedded: %v", i, serr)
		}
	}
	if _, serr := os.Stat(filepath.Join(out, "broken.xml")); serr == nil {
		t.Errorf("corrupt document produced an output file")
	}
}

func TestCLIBatchErrors(t *testing.T) {
	cases := []struct {
		args []string
	}{
		{nil}, // no --in
		{[]string{"--in", "does-not-exist", "--key", "k", "--mark", "m"}},
		{[]string{"--mode", "nope", "--in", ".", "--key", "k", "--mark", "m"}},
		{[]string{"--in", ".", "--mark", "m"}}, // no key
	}
	for _, tc := range cases {
		if err := run("batch", tc.args); err == nil {
			t.Errorf("wmxml batch %v succeeded, want error", tc.args)
		}
	}
	// A directory with no XML files.
	empty := t.TempDir()
	if err := run("batch", []string{"--in", empty, "--key", "k", "--mark", "m"}); err == nil {
		t.Errorf("batch over an empty directory succeeded")
	}
}
