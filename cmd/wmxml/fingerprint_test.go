package main

import (
	"path/filepath"
	"testing"
)

// TestCLIFingerprintTrace walks the distribution chain on the command
// line: generate → fingerprint three recipients → collude two → trace.
func TestCLIFingerprintTrace(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	runOK(t, "gen", "--dataset", "pubs", "--size", "250", "--seed", "9", "--out", doc)

	copies := map[string]string{}
	for _, r := range []string{"alice", "bob", "carol"} {
		out := filepath.Join(dir, r+".xml")
		q := filepath.Join(dir, r+"-q.json")
		runOK(t, "fingerprint", "--dataset", "pubs", "--in", doc,
			"--key", "cli-owner-key", "--recipient", r, "--gamma", "3",
			"--out", out, "--queries", q)
		copies[r] = out
	}

	// Single leaker, blind and through a query set.
	runOK(t, "trace", "--dataset", "pubs", "--in", copies["bob"],
		"--key", "cli-owner-key", "--gamma", "3", "--recipients", "alice,bob,carol")
	runOK(t, "trace", "--dataset", "pubs", "--in", copies["bob"],
		"--key", "cli-owner-key", "--gamma", "3", "--recipients", "alice,bob,carol",
		"--queries", filepath.Join(dir, "bob-q.json"))

	// Collude alice+carol, then trace the pirate copy.
	pirate := filepath.Join(dir, "pirate.xml")
	runOK(t, "attack", "--dataset", "pubs", "--in", copies["alice"],
		"--attack", "collusion", "--colluders", copies["carol"],
		"--strategy", "segments", "--seed", "3", "--out", pirate)
	runOK(t, "trace", "--dataset", "pubs", "--in", pirate,
		"--key", "cli-owner-key", "--gamma", "3", "--recipients", "alice,bob,carol")

	// Usage errors.
	for _, args := range [][]string{
		{"--dataset", "pubs", "--in", doc, "--key", "k"},        // no recipient
		{"--dataset", "pubs", "--in", doc, "--recipient", "r"},  // no key
		{"--dataset", "pubs", "--key", "k", "--recipient", "r"}, // no input
	} {
		if err := run("fingerprint", args); err == nil || !isUsage(err) {
			t.Errorf("fingerprint %v: err=%v, want usage error", args, err)
		}
	}
	if err := run("trace", []string{"--dataset", "pubs", "--in", doc, "--key", "k"}); err == nil || !isUsage(err) {
		t.Error("trace without --recipients must be a usage error")
	}
	if err := run("attack", []string{"--dataset", "pubs", "--in", doc, "--attack", "collusion"}); err == nil || !isUsage(err) {
		t.Error("collusion without --colluders must be a usage error")
	}
}

func TestCLIVersion(t *testing.T) {
	runOK(t, "version")
	runOK(t, "--version")
}
