// Command wmxml is the end-user tool of the WmXML system: generate
// sample datasets, embed and detect watermarks, run attacks, measure
// usability and inspect semantics.
//
// Usage:
//
//	wmxml gen       --dataset pubs|jobs|library --size N --seed S --out doc.xml
//	wmxml embed     --dataset pubs --in doc.xml --key K --mark MSG --gamma G
//	                --out marked.xml --queries q.json [--stream [--chunk N]]
//	wmxml detect    --dataset pubs --in suspect.xml --key K --mark MSG
//	                --queries q.json [--rewrite figure1] [--stream [--chunk N]]
//	wmxml batch     --mode embed|detect --dataset pubs --in dir/ --key K --mark MSG
//	                [--out dir-marked/] [--queries qdir/] [--workers N]
//	wmxml attack    --dataset pubs --in marked.xml --attack alteration|reduction|
//	                reorganize|reorder|redundancy --severity 0.3 --seed S --out out.xml
//	wmxml usability --dataset pubs --orig orig.xml --suspect s.xml [--rewrite figure1]
//	wmxml semantics --in doc.xml
//	wmxml stats     --in doc.xml
//
// The --dataset presets bundle the schema, key/FD catalog, watermark
// targets and usability templates of the three built-in workloads, so
// the tool is usable without writing configuration files.
//
// File flags accept "-" for stdin (--in, --orig, --suspect) and stdout
// (--out), so commands compose with pipes; status chatter moves to
// stderr whenever the document itself goes to stdout. Exit codes: 0
// success, 1 operation failure, 2 usage error.
//
// --stream on embed/detect switches to record-chunked constant-memory
// processing for documents too large to materialize; the output (and
// verdict) is byte-identical to the in-memory path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"wmxml"
)

// Exit codes: 0 success, 1 operation failure (I/O, embed/detect
// errors), 2 usage (unknown command, bad flags, missing required
// flags, unknown preset names).
const (
	exitFailure = 1
	exitUsage   = 2
)

// usageError marks an error as a usage problem (exit code 2).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usage error.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// isUsage reports whether err is a usage error anywhere in its chain.
func isUsage(err error) bool {
	var ue usageError
	return errors.As(err, &ue)
}

// version is the build stamp, injected at link time:
//
//	go build -ldflags "-X main.version=$(git rev-parse --short HEAD)" ./cmd/wmxml
var version = "dev"

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	if err := run(os.Args[1], os.Args[2:]); err != nil {
		if errors.Is(err, errHelp) {
			return // the flag package already printed the defaults
		}
		fmt.Fprintf(os.Stderr, "wmxml %s: %v\n", os.Args[1], err)
		if isUsage(err) {
			os.Exit(exitUsage)
		}
		os.Exit(exitFailure)
	}
}

// run dispatches one subcommand; factored out of main for testing.
func run(cmd string, args []string) error {
	switch cmd {
	case "gen":
		return cmdGen(args)
	case "embed":
		return cmdEmbed(args)
	case "detect":
		return cmdDetect(args)
	case "batch":
		return cmdBatch(args)
	case "attack":
		return cmdAttack(args)
	case "usability":
		return cmdUsability(args)
	case "semantics":
		return cmdSemantics(args)
	case "stats":
		return cmdStats(args)
	case "spec":
		return cmdSpec(args)
	case "verify":
		return cmdVerify(args)
	case "fingerprint":
		return cmdFingerprint(args)
	case "deliver":
		return cmdDeliver(args)
	case "trace":
		return cmdTrace(args)
	case "version", "-version", "--version":
		fmt.Printf("wmxml %s\n", version)
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return usagef("unknown command %q", cmd)
	}
}

// newFlagSet builds a subcommand flag set that reports parse problems
// as usage errors instead of exiting directly.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// errHelp marks an explicit -h/--help request: the defaults were
// already printed, and the process must exit 0, not 2.
var errHelp = errors.New("help requested")

// parseFlags wraps flag parse failures as usage errors; an explicit
// help request surfaces as errHelp.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return errHelp
		}
		return usageError{err}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `wmxml — watermarking for XML data (WmXML, VLDB 2005)

commands:
  gen        generate a sample dataset (pubs | jobs | library)
  embed      embed a watermark; writes the marked document and the query set Q
  detect     detect a watermark using the safeguarded query set
  batch      embed or detect across a whole directory of documents in parallel
  attack     apply an attack (alteration | reduction | reorganize | reorder | redundancy)
  usability  measure query-template usability of a suspect vs the original
  semantics  discover and verify keys and functional dependencies
  stats      print document statistics
  spec       export a dataset preset as a JSON spec (for --spec on custom data)
  verify     validate a document against its schema and verify keys and FDs
  fingerprint  embed a recipient-specific code (traitor tracing's distribution side)
  deliver    splice recipient copies from a precompiled patch plan (one compile, N copies)
  trace      rank recipients by how strongly a leaked copy points at them
  version    print the build version

run 'wmxml <command> -h' for the command's flags`)
}

// datasetPreset returns the built-in workload definition (schema,
// catalog, targets, templates) for --dataset, classifying an unknown
// name as a usage error.
func datasetPreset(name string, size int, seed int64) (*wmxml.Dataset, error) {
	if size <= 0 {
		size = 200
	}
	ds, err := wmxml.DatasetByName(name, size, seed)
	if err != nil {
		return nil, usagef("%v", err)
	}
	return ds, nil
}

// resolveParts returns the working definition either from a --spec file
// or from a --dataset preset.
func resolveParts(dataset, specPath string) (*wmxml.SpecParts, error) {
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		return wmxml.LoadSpec(data)
	}
	ds, err := datasetPreset(dataset, 1, 0)
	if err != nil {
		return nil, err
	}
	return &wmxml.SpecParts{
		Name:      ds.Name,
		Schema:    ds.Schema,
		Catalog:   ds.Catalog,
		Targets:   ds.Targets,
		Templates: ds.Templates,
	}, nil
}

// readDoc parses a document from a file, or from stdin when path is
// "-" — so the CLI composes with pipes and the wmxmld curl workflows.
func readDoc(path string) (*wmxml.Document, error) {
	if path == "-" {
		return wmxml.ParseXML(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return wmxml.ParseXML(f)
}

// writeDoc serializes a document to a file, or to stdout when path is
// "-".
func writeDoc(path string, doc *wmxml.Document) error {
	if path == "-" {
		return wmxml.SerializeXML(os.Stdout, doc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return wmxml.SerializeXML(f, doc)
}

// statusOut returns the stream for human status chatter: stderr when
// the document itself goes to stdout, so piped XML stays clean.
func statusOut(outPath string) io.Writer {
	if outPath == "-" {
		return os.Stderr
	}
	return os.Stdout
}

// openIn opens a raw byte reader over a file, or stdin for "-" — the
// streaming commands never materialize the document, so they work on
// raw readers instead of parsed trees.
func openIn(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// createOut opens a raw byte writer over a file, or stdout for "-".
func createOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// streamStatus renders the streaming stats line.
func streamStatus(w io.Writer, stats wmxml.StreamStats) {
	if stats.Streamed {
		fmt.Fprintf(w, "streamed: %d chunks, %d records (constant memory)\n", stats.Chunks, stats.Records)
	} else {
		fmt.Fprintf(w, "streaming fell back to the in-memory path: %s\n", stats.FallbackReason)
	}
}

// resolveMapping loads a mapping from a JSON file or by built-in name.
func resolveMapping(name, file string) (wmxml.Mapping, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return wmxml.Mapping{}, err
		}
		return wmxml.LoadMapping(data)
	}
	return mappingByName(name)
}

// mappingByName resolves the built-in schema mappings.
func mappingByName(name string) (wmxml.Mapping, error) {
	switch name {
	case "figure1":
		return wmxml.Figure1Mapping(), nil
	case "pubs", "figure1+price":
		return wmxml.PublicationsMapping(), nil
	default:
		return wmxml.Mapping{}, usagef("unknown mapping %q (built in: figure1, pubs)", name)
	}
}

func cmdGen(args []string) error {
	fs := newFlagSet("gen")
	dataset := fs.String("dataset", "pubs", "dataset preset: pubs, jobs or library")
	size := fs.Int("size", 200, "number of records")
	seed := fs.Int64("seed", 2005, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	ds, err := datasetPreset(*dataset, *size, *seed)
	if err != nil {
		return err
	}
	if *out == "" || *out == "-" {
		return wmxml.SerializeXML(os.Stdout, ds.Doc)
	}
	if err := writeDoc(*out, ds.Doc); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d records, dataset %s)\n", *out, *size, ds.Name)
	fmt.Printf("watermark targets: %v\n", ds.Targets)
	fmt.Printf("usability templates: %v\n", ds.Templates)
	return nil
}

func sysFromFlags(parts *wmxml.SpecParts, key, mark string, gamma int) (*wmxml.System, error) {
	if key == "" {
		return nil, usagef("--key is required")
	}
	if mark == "" {
		return nil, usagef("--mark is required")
	}
	return wmxml.New(wmxml.Options{
		Key:     key,
		Mark:    mark,
		Schema:  parts.Schema,
		Catalog: parts.Catalog,
		Targets: parts.Targets,
		Gamma:   gamma,
	})
}

func cmdEmbed(args []string) error {
	fs := newFlagSet("embed")
	dataset := fs.String("dataset", "pubs", "dataset preset defining schema and semantics")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	in := fs.String("in", "", "input document")
	key := fs.String("key", "", "secret key")
	mark := fs.String("mark", "", "watermark message")
	gamma := fs.Int("gamma", 10, "selection ratio: 1 in gamma units carries a bit")
	out := fs.String("out", "marked.xml", "output (watermarked) document")
	queries := fs.String("queries", "queries.json", "output query set Q")
	streaming := fs.Bool("stream", false, "record-chunked constant-memory embedding for huge documents (byte-identical output)")
	chunk := fs.Int("chunk", 0, "records per chunk with --stream (0 = 256)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	sys, err := sysFromFlags(parts, *key, *mark, *gamma)
	if err != nil {
		return err
	}
	var receipt *wmxml.EmbedReceipt
	if *streaming {
		rf, err := openIn(*in)
		if err != nil {
			return err
		}
		defer rf.Close()
		wf, err := createOut(*out)
		if err != nil {
			return err
		}
		var stats wmxml.StreamStats
		receipt, stats, err = sys.EmbedStreamContext(context.Background(), rf, wf, wmxml.StreamOptions{ChunkSize: *chunk})
		if err != nil {
			wf.Close()
			return err
		}
		if err := wf.Close(); err != nil {
			return err
		}
		streamStatus(statusOut(*out), stats)
	} else {
		doc, err := readDoc(*in)
		if err != nil {
			return err
		}
		receipt, err = sys.Embed(doc)
		if err != nil {
			return err
		}
		if err := writeDoc(*out, doc); err != nil {
			return err
		}
	}
	data, err := wmxml.MarshalReceipt(receipt.Records)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*queries, data, 0o600); err != nil {
		return err
	}
	w := statusOut(*out)
	fmt.Fprintf(w, "bandwidth: %d units; carriers: %d; values written: %d\n",
		receipt.BandwidthUnits, receipt.Carriers, receipt.ValuesWritten)
	fmt.Fprintf(w, "marked document: %s\nquery set Q:     %s  (safeguard together with the key)\n", *out, *queries)
	return nil
}

func cmdDetect(args []string) error {
	fs := newFlagSet("detect")
	dataset := fs.String("dataset", "pubs", "dataset preset defining schema and semantics")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	in := fs.String("in", "", "suspect document")
	key := fs.String("key", "", "secret key")
	mark := fs.String("mark", "", "expected watermark message")
	gamma := fs.Int("gamma", 10, "selection ratio used at embedding")
	queries := fs.String("queries", "", "query set Q from embedding (omit for blind detection)")
	rewriteMap := fs.String("rewrite", "", "rewrite queries through a built-in mapping: figure1 | pubs")
	rewriteFile := fs.String("rewrite-file", "", "rewrite queries through a JSON mapping file")
	streaming := fs.Bool("stream", false, "record-chunked constant-memory detection for huge documents (identical verdict)")
	chunk := fs.Int("chunk", 0, "records per chunk with --stream (0 = 256)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	sys, err := sysFromFlags(parts, *key, *mark, *gamma)
	if err != nil {
		return err
	}
	var records []wmxml.QueryRecord
	var rw wmxml.Rewriter
	if *queries != "" {
		data, rerr := os.ReadFile(*queries)
		if rerr != nil {
			return rerr
		}
		if records, rerr = wmxml.UnmarshalReceipt(data); rerr != nil {
			return rerr
		}
		if *rewriteMap != "" || *rewriteFile != "" {
			m, merr := resolveMapping(*rewriteMap, *rewriteFile)
			if merr != nil {
				return merr
			}
			qrw, rerr := wmxml.NewRewriter(m)
			if rerr != nil {
				return rerr
			}
			rw = qrw
		}
	}
	var det *wmxml.Detection
	if *streaming {
		rf, oerr := openIn(*in)
		if oerr != nil {
			return oerr
		}
		defer rf.Close()
		var stats wmxml.StreamStats
		opts := wmxml.StreamOptions{ChunkSize: *chunk}
		if *queries == "" {
			det, stats, err = sys.DetectBlindStreamContext(context.Background(), rf, opts)
		} else {
			det, stats, err = sys.DetectStreamContext(context.Background(), rf, records, rw, opts)
		}
		if err != nil {
			return err
		}
		streamStatus(os.Stderr, stats)
	} else {
		doc, rerr := readDoc(*in)
		if rerr != nil {
			return rerr
		}
		if *queries == "" {
			det, err = sys.DetectBlind(doc)
		} else {
			det, err = sys.Detect(doc, records, rw)
		}
		if err != nil {
			return err
		}
	}
	verdict := "NOT DETECTED"
	if det.Detected {
		verdict = "DETECTED"
	}
	fmt.Printf("%s  match=%.3f coverage=%.3f queries=%d misses=%d\n",
		verdict, det.MatchFraction, det.Coverage, det.QueriesRun, det.QueryMisses)
	fmt.Printf("confidence: sigma=%.1f, chance of a random mark matching this well: %.2e\n",
		det.Sigma, det.FalsePositiveRate)
	if det.Detected && det.RecoveredText != "" {
		fmt.Printf("recovered text: %q\n", det.RecoveredText)
	}
	return nil
}

func cmdAttack(args []string) error {
	fs := newFlagSet("attack")
	dataset := fs.String("dataset", "pubs", "dataset preset (for scopes and FDs)")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	in := fs.String("in", "", "input document")
	name := fs.String("attack", "alteration", "alteration | reduction | reorganize | reorder | redundancy | collusion")
	severity := fs.Float64("severity", 0.3, "alteration fraction / reduction keep-fraction")
	seed := fs.Int64("seed", 1, "attack randomness seed")
	mapName := fs.String("mapping", "pubs", "mapping for reorganize: figure1 | pubs")
	mapFile := fs.String("mapping-file", "", "JSON mapping file for reorganize")
	colluders := fs.String("colluders", "", "comma-separated fingerprinted copies joining --in for collusion")
	strategy := fs.String("strategy", "mix", "collusion composition: mix | segments | majority")
	out := fs.String("out", "attacked.xml", "output document")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	doc, err := readDoc(*in)
	if err != nil {
		return err
	}
	var atk wmxml.Attack
	switch *name {
	case "alteration":
		atk = wmxml.NewAlterationAttack(*severity)
	case "reduction":
		if len(parts.Catalog.Keys) == 0 {
			return fmt.Errorf("reduction needs a key scope in the spec")
		}
		atk = wmxml.NewReductionAttack(parts.Catalog.Keys[0].Scope, *severity)
	case "reorganize":
		m, merr := resolveMapping(*mapName, *mapFile)
		if merr != nil {
			return merr
		}
		atk = wmxml.NewReorganizationAttack(m)
	case "reorder":
		atk = wmxml.NewReorderAttack()
	case "redundancy":
		atk = wmxml.NewRedundancyRemovalAttack(parts.Catalog.FDs)
	case "collusion":
		if *colluders == "" {
			return usagef("collusion needs --colluders (comma-separated fingerprinted copies)")
		}
		if len(parts.Catalog.Keys) == 0 {
			return fmt.Errorf("collusion needs a key scope in the spec")
		}
		var copies []*wmxml.Document
		for _, path := range strings.Split(*colluders, ",") {
			c, cerr := readDoc(strings.TrimSpace(path))
			if cerr != nil {
				return cerr
			}
			copies = append(copies, c)
		}
		atk = wmxml.NewCollusionAttack(copies, parts.Catalog.Keys[0].Scope, wmxml.CollusionStrategy(*strategy))
	default:
		return usagef("unknown attack %q", *name)
	}
	attacked, err := atk.Apply(doc, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	if err := writeDoc(*out, attacked); err != nil {
		return err
	}
	fmt.Fprintf(statusOut(*out), "applied %s -> %s\n", atk.Name(), *out)
	return nil
}

func cmdUsability(args []string) error {
	fs := newFlagSet("usability")
	dataset := fs.String("dataset", "pubs", "dataset preset supplying the templates")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	orig := fs.String("orig", "", "original document")
	suspect := fs.String("suspect", "", "suspect document")
	rewriteMap := fs.String("rewrite", "", "rewrite templates through a built-in mapping: figure1 | pubs")
	rewriteFile := fs.String("rewrite-file", "", "rewrite templates through a JSON mapping file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	if *orig == "" || *suspect == "" {
		return usagef("--orig and --suspect are required")
	}
	origDoc, err := readDoc(*orig)
	if err != nil {
		return err
	}
	susDoc, err := readDoc(*suspect)
	if err != nil {
		return err
	}
	meter, err := wmxml.NewUsabilityMeter(origDoc, parts.Templates)
	if err != nil {
		return err
	}
	var rw interface {
		RewriteQuery(*wmxml.Query) (*wmxml.Query, error)
	}
	if *rewriteMap != "" || *rewriteFile != "" {
		m, merr := resolveMapping(*rewriteMap, *rewriteFile)
		if merr != nil {
			return merr
		}
		qrw, err := wmxml.NewRewriter(m)
		if err != nil {
			return err
		}
		rw = qrw
	}
	sc := meter.Measure(susDoc, rw)
	fmt.Printf("usability: %.3f (%d/%d probes correct)\n", sc.Usability(), sc.Correct, sc.Probes)
	for _, ts := range sc.PerTemplate {
		fmt.Printf("  %-40s %d/%d\n", ts.Template, ts.Correct, ts.Probes)
	}
	return nil
}

func cmdSemantics(args []string) error {
	fs := newFlagSet("semantics")
	in := fs.String("in", "", "document to analyse")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	doc, err := readDoc(*in)
	if err != nil {
		return err
	}
	s := wmxml.InferSchema("inferred", doc)
	keys, err := wmxml.DiscoverKeys(doc, s)
	if err != nil {
		return err
	}
	fds, err := wmxml.DiscoverFDs(doc, s)
	if err != nil {
		return err
	}
	fmt.Printf("root element: %s\n", s.Root)
	fmt.Printf("discovered keys (%d):\n", len(keys))
	for _, k := range keys {
		fmt.Printf("  %s\n", k)
	}
	fmt.Printf("discovered functional dependencies (%d):\n", len(fds))
	for _, f := range fds {
		fmt.Printf("  %s\n", f)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := newFlagSet("stats")
	in := fs.String("in", "", "document to analyse")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	doc, err := readDoc(*in)
	if err != nil {
		return err
	}
	s := wmxml.InferSchema("stats", doc)
	names := s.ElementNames()
	sort.Strings(names)
	fmt.Printf("root: %s, element types: %d\n", s.Root, len(names))
	for _, n := range names {
		decl := s.Element(n)
		kind := "leaf/" + decl.Type.String()
		if !decl.IsLeaf() {
			kind = fmt.Sprintf("interior (%d child types)", len(decl.Children))
		}
		fmt.Printf("  %-16s %s\n", n, kind)
	}
	return nil
}

func cmdSpec(args []string) error {
	fs := newFlagSet("spec")
	dataset := fs.String("dataset", "pubs", "dataset preset to export")
	out := fs.String("out", "", "output file (default stdout)")
	mapping := fs.Bool("mapping", false, "export the dataset's re-organization mapping instead")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	var data []byte
	if *mapping {
		m, err := mappingByName("pubs")
		if err != nil {
			return err
		}
		data, err = wmxml.ExportMapping(m)
		if err != nil {
			return err
		}
	} else {
		parts, err := resolveParts(*dataset, "")
		if err != nil {
			return err
		}
		data, err = wmxml.ExportSpec(parts.Name, parts.Schema, parts.Catalog, parts.Targets, parts.Templates)
		if err != nil {
			return err
		}
	}
	if *out == "" || *out == "-" {
		fmt.Println(string(data))
		return nil
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// fingerprinterFromFlags builds the Fingerprinter shared by the
// fingerprint and trace subcommands.
func fingerprinterFromFlags(parts *wmxml.SpecParts, key string, gamma int, alpha float64) (*wmxml.Fingerprinter, error) {
	if key == "" {
		return nil, usagef("--key is required")
	}
	return wmxml.NewFingerprinter(wmxml.FingerprintOptions{
		Key:     key,
		Schema:  parts.Schema,
		Catalog: parts.Catalog,
		Targets: parts.Targets,
		Gamma:   gamma,
		Alpha:   alpha,
	})
}

// cmdFingerprint embeds a recipient-specific code: the distribution
// side of traitor tracing. The queries file is a normal receipt — one
// per recipient copy — and any of them (or none, blind) can drive a
// later trace.
func cmdFingerprint(args []string) error {
	fs := newFlagSet("fingerprint")
	dataset := fs.String("dataset", "pubs", "dataset preset defining schema and semantics")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	in := fs.String("in", "", "input document")
	key := fs.String("key", "", "owner secret key")
	recipient := fs.String("recipient", "", "recipient id this copy is for")
	gamma := fs.Int("gamma", 4, "selection ratio (tracing wants several votes per code bit)")
	out := fs.String("out", "fingerprinted.xml", "output (recipient) document")
	queries := fs.String("queries", "", "write this copy's query set Q here (optional)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	if *recipient == "" {
		return usagef("--recipient is required")
	}
	doc, err := readDoc(*in)
	if err != nil {
		return err
	}
	fp, err := fingerprinterFromFlags(parts, *key, *gamma, 0)
	if err != nil {
		return err
	}
	receipt, err := fp.Fingerprint(doc, *recipient)
	if err != nil {
		return err
	}
	if err := writeDoc(*out, doc); err != nil {
		return err
	}
	if *queries != "" {
		data, merr := wmxml.MarshalReceipt(receipt.Records)
		if merr != nil {
			return merr
		}
		if err := os.WriteFile(*queries, data, 0o600); err != nil {
			return err
		}
	}
	w := statusOut(*out)
	fmt.Fprintf(w, "fingerprinted for %q: bandwidth %d units, carriers %d, values written %d\n",
		*recipient, receipt.BandwidthUnits, receipt.Carriers, receipt.ValuesWritten)
	fmt.Fprintf(w, "recipient copy: %s\n", *out)
	return nil
}

// cmdDeliver splices recipient copies from a precompiled patch plan:
// one compile pass (or a stored plan) serves any number of recipients,
// each copy byte-identical to a full `wmxml fingerprint` of the same
// document.
func cmdDeliver(args []string) error {
	fs := newFlagSet("deliver")
	dataset := fs.String("dataset", "pubs", "dataset preset defining schema and semantics")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	in := fs.String("in", "", "input document (with --use-plan: the canonical bytes the plan was compiled from)")
	key := fs.String("key", "", "owner secret key")
	recipients := fs.String("recipients", "", "comma-separated recipient ids, one copy each")
	gamma := fs.Int("gamma", 4, "selection ratio (tracing wants several votes per code bit)")
	out := fs.String("out", "delivered-{recipient}.xml", "output path pattern; {recipient} expands per copy")
	planOut := fs.String("plan", "", "write the compiled plan envelope here (reusable via --use-plan)")
	planIn := fs.String("use-plan", "", "splice from this precompiled plan instead of compiling")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	if *recipients == "" {
		return usagef("--recipients is required")
	}
	var ids []string
	for _, id := range strings.Split(*recipients, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) > 1 && !strings.Contains(*out, "{recipient}") {
		return usagef("--out must contain {recipient} when delivering to several recipients")
	}
	d, err := delivererFromFlags(parts, *key, *gamma)
	if err != nil {
		return err
	}

	var (
		plan      *wmxml.DeliveryPlan
		canonical []byte
	)
	if *planIn != "" {
		// Parse-free path: the plan's offsets index the raw input bytes.
		env, rerr := os.ReadFile(*planIn)
		if rerr != nil {
			return rerr
		}
		if plan, err = wmxml.UnmarshalDeliveryPlan(env); err != nil {
			return err
		}
		if canonical, err = os.ReadFile(*in); err != nil {
			return err
		}
	} else {
		doc, rerr := readDoc(*in)
		if rerr != nil {
			return rerr
		}
		if plan, canonical, err = d.CompilePlan(doc); err != nil {
			return err
		}
	}
	if *planOut != "" {
		env, merr := plan.Marshal()
		if merr != nil {
			return merr
		}
		if err := os.WriteFile(*planOut, env, 0o600); err != nil {
			return err
		}
	}

	w := statusOut(*out)
	for _, id := range ids {
		copyBytes, receipt, derr := d.Deliver(plan, canonical, id)
		if derr != nil {
			return fmt.Errorf("deliver %q: %w", id, derr)
		}
		path := strings.ReplaceAll(*out, "{recipient}", id)
		if path == "-" {
			if _, err := os.Stdout.Write(copyBytes); err != nil {
				return err
			}
		} else if err := os.WriteFile(path, copyBytes, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "delivered to %q: carriers %d, values written %d -> %s\n",
			id, receipt.Carriers, receipt.ValuesWritten, path)
	}
	fmt.Fprintf(w, "plan: %d sites over %d bytes (digest %s)\n", len(plan.Sites), plan.DocLen, plan.Digest[:12])
	return nil
}

// delivererFromFlags builds the Deliverer for the deliver subcommand,
// mirroring fingerprinterFromFlags so spliced copies match fingerprint
// output byte-for-byte.
func delivererFromFlags(parts *wmxml.SpecParts, key string, gamma int) (*wmxml.Deliverer, error) {
	if key == "" {
		return nil, usagef("--key is required")
	}
	return wmxml.NewDeliverer(wmxml.FingerprintOptions{
		Key:     key,
		Schema:  parts.Schema,
		Catalog: parts.Catalog,
		Targets: parts.Targets,
		Gamma:   gamma,
	})
}

// cmdTrace ranks candidate recipients against a leaked copy.
func cmdTrace(args []string) error {
	fs := newFlagSet("trace")
	dataset := fs.String("dataset", "pubs", "dataset preset defining schema and semantics")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	in := fs.String("in", "", "suspect document")
	key := fs.String("key", "", "owner secret key")
	recipients := fs.String("recipients", "", "comma-separated candidate recipient ids")
	gamma := fs.Int("gamma", 4, "selection ratio used at fingerprinting")
	alpha := fs.Float64("alpha", 0, "false-accusation budget per trace (0 = default 1e-3)")
	queries := fs.String("queries", "", "query set Q from any fingerprint embedding (omit for blind decoding)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	if *recipients == "" {
		return usagef("--recipients is required")
	}
	var cands []string
	for _, id := range strings.Split(*recipients, ",") {
		if id = strings.TrimSpace(id); id != "" {
			cands = append(cands, id)
		}
	}
	doc, err := readDoc(*in)
	if err != nil {
		return err
	}
	fp, err := fingerprinterFromFlags(parts, *key, *gamma, *alpha)
	if err != nil {
		return err
	}
	var records []wmxml.QueryRecord
	if *queries != "" {
		data, rerr := os.ReadFile(*queries)
		if rerr != nil {
			return rerr
		}
		if records, rerr = wmxml.UnmarshalReceipt(data); rerr != nil {
			return rerr
		}
	}
	res, err := fp.Trace(doc, cands, records, nil)
	if err != nil {
		return err
	}
	if len(res.Accused) == 0 {
		fmt.Printf("NO ACCUSATION  (decided bits: %d, threshold p<=%.2e)\n", res.DecidedBits, res.Threshold)
	} else {
		fmt.Printf("ACCUSED: %s  (decided bits: %d, threshold p<=%.2e)\n",
			strings.Join(res.Accused, ", "), res.DecidedBits, res.Threshold)
	}
	for i, a := range res.Accusations {
		verdict := ""
		if a.Accused {
			verdict = "  <- accused"
		}
		fmt.Printf("  %2d. %-20s match=%.3f z=%+.1f p=%.2e segs=%d/%d%s\n",
			i+1, a.Recipient, a.MatchFraction, a.Z, a.PValue, a.SegmentsAttributed, len(a.SegmentMatches), verdict)
	}
	return nil
}

// cmdVerify implements the paper's initialization step 1: "Specify a
// schema and validate the XML data according to the schema" — plus
// verification of the declared keys and FDs.
func cmdVerify(args []string) error {
	fs := newFlagSet("verify")
	dataset := fs.String("dataset", "pubs", "dataset preset defining schema and semantics")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	in := fs.String("in", "", "document to verify")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in is required")
	}
	doc, err := readDoc(*in)
	if err != nil {
		return err
	}
	violations := parts.Schema.Validate(doc)
	if len(violations) == 0 {
		fmt.Println("schema: valid")
	} else {
		fmt.Printf("schema: %d violations\n", len(violations))
		for i, v := range violations {
			if i == 10 {
				fmt.Printf("  ... and %d more\n", len(violations)-10)
				break
			}
			fmt.Printf("  %s\n", v)
		}
	}
	keyReps, fdReps, err := parts.Catalog.Verify(doc)
	if err != nil {
		return err
	}
	for _, r := range keyReps {
		status := "holds"
		if !r.OK() {
			status = fmt.Sprintf("VIOLATED (%d missing, %d duplicate values)", r.Missing, len(r.Duplicates))
		}
		fmt.Printf("key %s: %s over %d instances\n", r.Key, status, r.Instances)
	}
	for _, r := range fdReps {
		status := "holds"
		if !r.OK() {
			status = fmt.Sprintf("VIOLATED (%d groups disagree)", len(r.Violations))
		}
		fmt.Printf("fd  %s: %s (%d groups, %d redundant members)\n", r.FD, status, r.Groups, r.DupMembers)
	}
	if len(violations) > 0 {
		return fmt.Errorf("document invalid")
	}
	for _, r := range keyReps {
		if !r.OK() {
			return fmt.Errorf("key constraint violated")
		}
	}
	for _, r := range fdReps {
		if !r.OK() {
			return fmt.Errorf("fd constraint violated")
		}
	}
	return nil
}
