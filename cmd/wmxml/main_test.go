package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOK runs a subcommand and fails the test on error.
func runOK(t *testing.T, cmd string, args ...string) {
	t.Helper()
	if err := run(cmd, args); err != nil {
		t.Fatalf("wmxml %s %v: %v", cmd, args, err)
	}
}

func TestCLIFullPipeline(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	marked := filepath.Join(dir, "marked.xml")
	queries := filepath.Join(dir, "q.json")
	attacked := filepath.Join(dir, "attacked.xml")

	runOK(t, "gen", "--dataset", "pubs", "--size", "120", "--seed", "5", "--out", doc)
	if _, err := os.Stat(doc); err != nil {
		t.Fatalf("gen produced no file: %v", err)
	}
	runOK(t, "embed", "--dataset", "pubs", "--in", doc,
		"--key", "cli-key", "--mark", "(C) CLI", "--gamma", "3",
		"--out", marked, "--queries", queries)
	if _, err := os.Stat(queries); err != nil {
		t.Fatalf("embed produced no query set: %v", err)
	}
	runOK(t, "detect", "--dataset", "pubs", "--in", marked,
		"--key", "cli-key", "--mark", "(C) CLI", "--gamma", "3", "--queries", queries)

	// Attack then detect through rewriting.
	runOK(t, "attack", "--dataset", "pubs", "--in", marked,
		"--attack", "reorganize", "--mapping", "pubs", "--out", attacked)
	runOK(t, "detect", "--dataset", "pubs", "--in", attacked,
		"--key", "cli-key", "--mark", "(C) CLI", "--gamma", "3",
		"--queries", queries, "--rewrite", "pubs")

	// Usability of the attacked document.
	runOK(t, "usability", "--dataset", "pubs", "--orig", doc,
		"--suspect", attacked, "--rewrite", "pubs")

	// Analysis commands.
	runOK(t, "semantics", "--in", doc)
	runOK(t, "stats", "--in", doc)
}

func TestCLISpecWorkflow(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	mapping := filepath.Join(dir, "map.json")
	doc := filepath.Join(dir, "jobs.xml")
	marked := filepath.Join(dir, "marked.xml")
	queries := filepath.Join(dir, "q.json")

	runOK(t, "spec", "--dataset", "jobs", "--out", spec)
	data, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"jobs/job"`) {
		t.Errorf("spec missing scope: %s", data)
	}
	runOK(t, "spec", "--mapping", "--out", mapping)

	runOK(t, "gen", "--dataset", "jobs", "--size", "100", "--out", doc)
	runOK(t, "embed", "--spec", spec, "--in", doc,
		"--key", "k", "--mark", "M", "--gamma", "2", "--out", marked, "--queries", queries)
	runOK(t, "detect", "--spec", spec, "--in", marked,
		"--key", "k", "--mark", "M", "--gamma", "2", "--queries", queries)
}

func TestCLIAttackVariants(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	runOK(t, "gen", "--dataset", "library", "--size", "60", "--out", doc)
	for _, atk := range []string{"alteration", "reduction", "reorder", "redundancy"} {
		out := filepath.Join(dir, atk+".xml")
		runOK(t, "attack", "--dataset", "library", "--in", doc,
			"--attack", atk, "--severity", "0.5", "--out", out)
		if _, err := os.Stat(out); err != nil {
			t.Errorf("attack %s produced no file", atk)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		cmd  string
		args []string
	}{
		{"definitely-not-a-command", nil},
		{"gen", []string{"--dataset", "nope"}},
		{"embed", []string{"--dataset", "pubs"}},                     // no --in
		{"embed", []string{"--dataset", "pubs", "--in", "nope.xml"}}, // missing file
		{"detect", []string{"--dataset", "pubs"}},
		{"attack", []string{"--dataset", "pubs", "--in", "nope.xml"}},
		{"usability", []string{"--dataset", "pubs"}},
		{"semantics", nil},
		{"stats", nil},
	}
	for _, tc := range cases {
		if err := run(tc.cmd, tc.args); err == nil {
			t.Errorf("wmxml %s %v succeeded, want error", tc.cmd, tc.args)
		}
	}
	// Embed without key/mark.
	doc := filepath.Join(dir, "d.xml")
	runOK(t, "gen", "--dataset", "pubs", "--size", "10", "--out", doc)
	if err := run("embed", []string{"--dataset", "pubs", "--in", doc, "--mark", "m"}); err == nil {
		t.Errorf("embed without key succeeded")
	}
	if err := run("embed", []string{"--dataset", "pubs", "--in", doc, "--key", "k"}); err == nil {
		t.Errorf("embed without mark succeeded")
	}
}

func TestCLIVerify(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	runOK(t, "gen", "--dataset", "pubs", "--size", "50", "--out", doc)
	runOK(t, "verify", "--dataset", "pubs", "--in", doc)

	// A broken document fails verification.
	bad := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(bad, []byte(`<db><magazine/></db>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("verify", []string{"--dataset", "pubs", "--in", bad}); err == nil {
		t.Errorf("invalid document verified")
	}
	// A document with a duplicated key fails verification.
	dup := filepath.Join(dir, "dup.xml")
	if err := os.WriteFile(dup, []byte(`<db>
	  <book publisher="p"><title>Same</title><author>A</author><editor>E</editor><year>1999</year><price>10.00</price></book>
	  <book publisher="p"><title>Same</title><author>B</author><editor>E</editor><year>2000</year><price>11.00</price></book>
	</db>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("verify", []string{"--dataset", "pubs", "--in", dup}); err == nil {
		t.Errorf("duplicate-key document verified")
	}
}

// TestCLIExitClassification: usage problems (exit 2) are
// distinguished from operation failures (exit 1).
func TestCLIExitClassification(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "d.xml")
	runOK(t, "gen", "--dataset", "pubs", "--size", "10", "--out", doc)

	usageCases := []struct {
		cmd  string
		args []string
	}{
		{"definitely-not-a-command", nil},
		{"gen", []string{"--dataset", "nope"}},
		{"embed", []string{"--dataset", "pubs"}},     // no --in
		{"embed", []string{"--no-such-flag"}},        // flag parse error
		{"detect", []string{"--dataset", "pubs"}},    // no --in
		{"usability", []string{"--dataset", "pubs"}}, // no --orig/--suspect
		{"batch", []string{"--mode", "nope", "--in", dir, "--key", "k", "--mark", "m"}},
		{"attack", []string{"--in", doc, "--attack", "nope"}},
		{"attack", []string{"--in", doc, "--attack", "reorganize", "--mapping", "nope"}},
		{"embed", []string{"--dataset", "pubs", "--in", doc}}, // no --key
	}
	for _, tc := range usageCases {
		err := run(tc.cmd, tc.args)
		if err == nil || !isUsage(err) {
			t.Errorf("wmxml %s %v: err = %v, want usage error", tc.cmd, tc.args, err)
		}
	}

	failureCases := []struct {
		cmd  string
		args []string
	}{
		{"embed", []string{"--dataset", "pubs", "--in", "no-such-file.xml", "--key", "k", "--mark", "m"}},
		{"detect", []string{"--dataset", "pubs", "--in", "no-such-file.xml", "--key", "k", "--mark", "m"}},
		{"stats", []string{"--in", "no-such-file.xml"}},
	}
	for _, tc := range failureCases {
		err := run(tc.cmd, tc.args)
		if err == nil || isUsage(err) {
			t.Errorf("wmxml %s %v: err = %v, want non-usage failure", tc.cmd, tc.args, err)
		}
	}
}

// TestCLIStdinStdout: "-" reads the document from stdin and writes it
// to stdout, with status chatter kept off the XML stream.
func TestCLIStdinStdout(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	queries := filepath.Join(dir, "q.json")
	runOK(t, "gen", "--dataset", "pubs", "--size", "60", "--seed", "3", "--out", doc)

	// embed --in - --out -: stdin from the generated file, stdout to a
	// capture file.
	inF, err := os.Open(doc)
	if err != nil {
		t.Fatal(err)
	}
	defer inF.Close()
	outPath := filepath.Join(dir, "marked.xml")
	outF, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin, os.Stdout = inF, outF
	embedErr := run("embed", []string{"--dataset", "pubs", "--in", "-", "--out", "-",
		"--key", "pipe-key", "--mark", "(C) pipe", "--gamma", "3", "--queries", queries})
	os.Stdin, os.Stdout = oldIn, oldOut
	outF.Close()
	if embedErr != nil {
		t.Fatalf("embed via pipes: %v", embedErr)
	}

	// The capture must be pure XML (chatter went to stderr).
	marked, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(marked)), "<") {
		t.Fatalf("stdout is not clean XML: %q", marked[:min(len(marked), 80)])
	}
	if strings.Contains(string(marked), "bandwidth:") {
		t.Fatal("status chatter leaked into the XML stream")
	}

	// detect --in - reads the marked doc from stdin and finds the mark.
	mF, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mF.Close()
	os.Stdin = mF
	detectErr := run("detect", []string{"--dataset", "pubs", "--in", "-",
		"--key", "pipe-key", "--mark", "(C) pipe", "--gamma", "3", "--queries", queries})
	os.Stdin = oldIn
	if detectErr != nil {
		t.Fatalf("detect via stdin: %v", detectErr)
	}
}

// TestCLIHelpFlagExitsClean: -h on a subcommand is a successful help
// request (exit 0), not a usage failure.
func TestCLIHelpFlagExitsClean(t *testing.T) {
	for _, cmd := range []string{"embed", "detect", "gen", "batch"} {
		err := run(cmd, []string{"-h"})
		if !errors.Is(err, errHelp) {
			t.Errorf("wmxml %s -h: err = %v, want errHelp", cmd, err)
		}
		if isUsage(err) {
			t.Errorf("wmxml %s -h classified as usage error", cmd)
		}
	}
}

func TestCLIHelp(t *testing.T) {
	if err := run("help", nil); err != nil {
		t.Errorf("help returned error: %v", err)
	}
}

func TestMappingByName(t *testing.T) {
	for _, name := range []string{"figure1", "pubs", "figure1+price"} {
		if _, err := mappingByName(name); err != nil {
			t.Errorf("mappingByName(%q): %v", name, err)
		}
	}
	if _, err := mappingByName("bogus"); err == nil {
		t.Errorf("bogus mapping accepted")
	}
}

func TestDatasetPreset(t *testing.T) {
	for _, name := range []string{"pubs", "publications", "jobs", "library"} {
		ds, err := datasetPreset(name, 10, 1)
		if err != nil || ds == nil {
			t.Errorf("datasetPreset(%q): %v", name, err)
		}
	}
	if _, err := datasetPreset("nope", 10, 1); err == nil {
		t.Errorf("bogus preset accepted")
	}
}
