package main

// The batch subcommand: embed or detect across a whole directory of XML
// documents in parallel, via wmxml.Pipeline. One bad file reports and
// is skipped; the rest of the corpus is unaffected.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wmxml"
)

func cmdBatch(args []string) error {
	fs := newFlagSet("batch")
	mode := fs.String("mode", "embed", "embed | detect")
	dataset := fs.String("dataset", "pubs", "dataset preset defining schema and semantics")
	spec := fs.String("spec", "", "JSON spec file (overrides --dataset)")
	in := fs.String("in", "", "input directory of .xml documents")
	out := fs.String("out", "", "output directory for marked documents (embed mode; default <in>-marked)")
	queries := fs.String("queries", "", "query-set directory: embed writes one <name>.queries.json per document here (default --out); detect reads them (empty: blind detection)")
	key := fs.String("key", "", "secret key")
	mark := fs.String("mark", "", "watermark message")
	gamma := fs.Int("gamma", 10, "selection ratio: 1 in gamma units carries a bit")
	workers := fs.Int("workers", 0, "concurrent documents (0 = number of CPUs)")
	rewriteMap := fs.String("rewrite", "", "detect: rewrite queries through a built-in mapping: figure1 | pubs")
	rewriteFile := fs.String("rewrite-file", "", "detect: rewrite queries through a JSON mapping file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("--in (a directory of .xml files) is required")
	}
	parts, err := resolveParts(*dataset, *spec)
	if err != nil {
		return err
	}
	sys, err := sysFromFlags(parts, *key, *mark, *gamma)
	if err != nil {
		return err
	}
	pl := wmxml.NewPipeline(sys, wmxml.PipelineOptions{Workers: *workers})

	files, err := listXMLFiles(*in)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no .xml files in %s", *in)
	}

	switch *mode {
	case "embed":
		outDir := *out
		if outDir == "" {
			outDir = strings.TrimRight(*in, "/\\") + "-marked"
		}
		qDir := *queries
		if qDir == "" {
			qDir = outDir
		}
		return batchEmbed(pl, files, outDir, qDir)
	case "detect":
		var rw wmxml.Rewriter
		if *rewriteMap != "" || *rewriteFile != "" {
			m, merr := resolveMapping(*rewriteMap, *rewriteFile)
			if merr != nil {
				return merr
			}
			qrw, rerr := wmxml.NewRewriter(m)
			if rerr != nil {
				return rerr
			}
			rw = qrw
		}
		return batchDetect(pl, files, *queries, rw)
	default:
		return usagef("unknown --mode %q (want embed or detect)", *mode)
	}
}

// listXMLFiles returns the sorted .xml files directly inside dir.
func listXMLFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".xml") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	sort.Strings(files)
	return files, nil
}

// parseCorpus reads every file; parse failures come back as outcome
// errors rather than aborting the batch.
func parseCorpus(files []string) ([]*wmxml.Document, []error) {
	docs := make([]*wmxml.Document, len(files))
	errs := make([]error, len(files))
	for i, f := range files {
		docs[i], errs[i] = readDoc(f)
	}
	return docs, errs
}

func batchEmbed(pl *wmxml.Pipeline, files []string, outDir, qDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(qDir, 0o755); err != nil {
		return err
	}
	docs, parseErrs := parseCorpus(files)
	outs, err := pl.EmbedBatch(context.Background(), docs)
	if err != nil {
		return err
	}
	failed := 0
	for i, o := range outs {
		name := filepath.Base(files[i])
		oErr := o.Err
		if parseErrs[i] != nil {
			oErr = parseErrs[i]
		}
		if oErr != nil {
			failed++
			fmt.Fprintf(os.Stderr, "  %-28s FAILED: %v\n", name, oErr)
			continue
		}
		dst := filepath.Join(outDir, name)
		qPath := filepath.Join(qDir, queriesName(name))
		if werr := writeDoc(dst, docs[i]); werr != nil {
			failed++
			fmt.Fprintf(os.Stderr, "  %-28s FAILED writing: %v\n", name, werr)
			continue
		}
		data, merr := wmxml.MarshalReceipt(o.Receipt.Records)
		if merr == nil {
			merr = os.WriteFile(qPath, data, 0o600)
		}
		if merr != nil {
			failed++
			fmt.Fprintf(os.Stderr, "  %-28s FAILED writing queries: %v\n", name, merr)
			continue
		}
		fmt.Printf("  %-28s carriers=%d values=%d -> %s\n", name, o.Receipt.Carriers, o.Receipt.ValuesWritten, dst)
	}
	sum := wmxml.SummarizeEmbedBatch(outs)
	fmt.Printf("embedded %d/%d documents (%d workers): %d carriers, %d values written\n",
		sum.Succeeded, sum.Docs, pl.Workers(), sum.Carriers, sum.ValuesWritten)
	fmt.Printf("marked documents in %s, query sets in %s (safeguard with the key)\n", outDir, qDir)
	if failed > 0 {
		return fmt.Errorf("%d of %d documents failed", failed, len(files))
	}
	return nil
}

func batchDetect(pl *wmxml.Pipeline, files []string, qDir string, rw wmxml.Rewriter) error {
	docs, parseErrs := parseCorpus(files)
	inputs := make([]wmxml.DetectInput, len(files))
	for i, f := range files {
		name := filepath.Base(f)
		inputs[i] = wmxml.DetectInput{ID: name, Doc: docs[i], Rewriter: rw}
		if qDir == "" {
			continue // blind detection
		}
		data, err := os.ReadFile(filepath.Join(qDir, queriesName(name)))
		if err != nil {
			if parseErrs[i] == nil {
				parseErrs[i] = fmt.Errorf("no query set: %w", err)
			}
			continue
		}
		recs, err := wmxml.UnmarshalReceipt(data)
		if err != nil {
			if parseErrs[i] == nil {
				parseErrs[i] = err
			}
			continue
		}
		inputs[i].Records = recs
	}
	for i := range inputs {
		if parseErrs[i] != nil {
			// Withhold the document so the engine reports a failed
			// outcome and the summary matches the per-file verdicts
			// (instead of silently falling back to blind detection).
			inputs[i].Doc = nil
		}
	}
	outs, err := pl.DetectBatch(context.Background(), inputs)
	if err != nil {
		return err
	}
	failed := 0
	for i, o := range outs {
		oErr := o.Err
		if parseErrs[i] != nil {
			oErr = parseErrs[i]
		}
		if oErr != nil {
			failed++
			fmt.Fprintf(os.Stderr, "  %-28s FAILED: %v\n", o.ID, oErr)
			continue
		}
		verdict := "not detected"
		if o.Detection.Detected {
			verdict = "DETECTED"
		}
		fmt.Printf("  %-28s %-12s match=%.3f coverage=%.3f sigma=%.1f\n",
			o.ID, verdict, o.Detection.MatchFraction, o.Detection.Coverage, o.Detection.Sigma)
	}
	sum := wmxml.SummarizeDetectBatch(outs)
	fmt.Printf("detected the watermark in %d of %d documents (%d workers, mean match %.3f, mean coverage %.3f)\n",
		sum.Detected, sum.Succeeded, pl.Workers(), sum.MeanMatch, sum.MeanCoverage)
	if failed > 0 {
		return fmt.Errorf("%d of %d documents failed", failed, len(files))
	}
	return nil
}

// queriesName maps doc.xml -> doc.queries.json.
func queriesName(name string) string {
	return strings.TrimSuffix(name, filepath.Ext(name)) + ".queries.json"
}
