package main

// CLI leg of the cross-layer conformance suite: the same corpus and
// golden file as internal/stream/conformance_test.go, driven through
// the embed/detect subcommands (buffered and --stream). If the CLI's
// output ever diverges from the library entry points, this breaks.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCLIConformanceCorpus(t *testing.T) {
	corpus := filepath.Join("..", "..", "internal", "stream", "testdata", "conformance")
	spec := filepath.Join(corpus, "spec.json")

	var golden map[string]struct {
		EmbedSHA256 string `json:"embed_sha256"`
	}
	data, err := os.ReadFile(filepath.Join(corpus, "expected.json"))
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}

	fixtures, err := filepath.Glob(filepath.Join(corpus, "*.xml"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	// The conformance constants are shared with the library suite; a
	// drifting flag value here would fail the digest comparison anyway.
	key, mark, gamma := "conformance-key", "W", "1"

	dir := t.TempDir()
	for _, fixture := range fixtures {
		name := filepath.Base(fixture)
		want, ok := golden[name]
		if !ok {
			t.Errorf("fixture %s missing from golden file", name)
			continue
		}
		for _, mode := range []string{"buffered", "stream"} {
			out := filepath.Join(dir, mode+"-"+name)
			queries := filepath.Join(dir, mode+"-"+name+".q.json")
			args := []string{"--spec", spec, "--in", fixture,
				"--key", key, "--mark", mark, "--gamma", gamma,
				"--out", out, "--queries", queries}
			if mode == "stream" {
				args = append(args, "--stream", "--chunk", "2")
			}
			runOK(t, "embed", args...)
			marked, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(marked)
			if got := hex.EncodeToString(sum[:]); got != want.EmbedSHA256 {
				t.Errorf("%s (%s): CLI embed digest %s != golden %s", name, mode, got[:12], want.EmbedSHA256[:12])
			}
			// Detection through the CLI: queries mode and blind, streamed
			// and buffered — exit status 0 is the verdict path working.
			runOK(t, "detect", "--spec", spec, "--in", out,
				"--key", key, "--mark", mark, "--gamma", gamma, "--queries", queries)
			runOK(t, "detect", "--spec", spec, "--in", out,
				"--key", key, "--mark", mark, "--gamma", gamma, "--queries", queries, "--stream", "--chunk", "2")
			runOK(t, "detect", "--spec", spec, "--in", out,
				"--key", key, "--mark", mark, "--gamma", gamma, "--stream")
		}
	}
}
