package wmxml

import (
	"math/rand"
	"strings"
	"testing"
)

func newPubSystem(t *testing.T, ds *Dataset, key, mark string) *System {
	t.Helper()
	sys, err := New(Options{
		Key:     key,
		Mark:    mark,
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: ds.Targets,
		Gamma:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIRoundTrip(t *testing.T) {
	ds := PublicationsDataset(250, 7)
	sys := newPubSystem(t, ds, "public-api-key", "(C) ACME 2005")
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	if receipt.Carriers == 0 || receipt.BandwidthUnits == 0 {
		t.Fatalf("empty receipt: %+v", receipt)
	}
	det, err := sys.Detect(doc, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected || det.MatchFraction != 1.0 {
		t.Errorf("detection: %+v", det)
	}
	blind, err := sys.DetectBlind(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !blind.Detected {
		t.Errorf("blind detection: %+v", blind)
	}
}

func TestPublicAPIRecoveredText(t *testing.T) {
	// With gamma 1 on a large document every bit is covered and the
	// recovered bits decode to the original message.
	ds := PublicationsDataset(2000, 9)
	sys, err := New(Options{
		Key: "text-key", Mark: "ACME05", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(doc, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if det.RecoveredText != "ACME05" {
		t.Errorf("recovered %q, want ACME05 (coverage %.2f)", det.RecoveredText, det.Coverage)
	}
}

func TestPublicAPIReorganizationFlow(t *testing.T) {
	ds := PublicationsDataset(300, 11)
	sys := newPubSystem(t, ds, "reorg-key", "reorg-mark")
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	m := Figure1Mapping()
	reorg, err := Reorganize(doc, m)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRewriter(m)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(reorg, receipt.Records, rw)
	if err != nil {
		t.Fatal(err)
	}
	// price is not part of the figure-1 mapping, so price queries cannot
	// be rewritten; year and publisher carriers still detect.
	if !det.Detected {
		t.Errorf("detection after reorganization: %+v", det)
	}
}

func TestPublicAPIAttacksAndUsability(t *testing.T) {
	ds := JobsDataset(250, 13)
	sys, err := New(Options{
		Key: "jobs-key", Mark: "jobs-mark", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := NewUsabilityMeter(ds.Doc, ds.Templates)
	if err != nil {
		t.Fatal(err)
	}
	if u := meter.Measure(doc, nil).Usability(); u < 0.97 {
		t.Errorf("marked usability = %.3f", u)
	}
	r := rand.New(rand.NewSource(5))
	attacked, err := NewAlterationAttack(0.15).Apply(doc, r)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(attacked, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Errorf("15%% alteration killed detection: %+v", det)
	}
	if u := meter.Measure(attacked, nil).Usability(); u > 0.95 {
		t.Errorf("15%% alteration left usability at %.3f", u)
	}
}

func TestPublicAPIBaseline(t *testing.T) {
	ds := PublicationsDataset(200, 17)
	doc := ds.Doc.Clone()
	mark := RandomMark("baseline-mark", 48)
	if err := BaselineEmbed(doc, "bkey", mark); err != nil {
		t.Fatal(err)
	}
	ok, match, err := BaselineDetect(doc, "bkey", mark)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || match != 1.0 {
		t.Errorf("baseline self-detect: %v %.3f", ok, match)
	}
	r := rand.New(rand.NewSource(3))
	shuffled, err := NewReorderAttack().Apply(doc, r)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err = BaselineDetect(shuffled, "bkey", mark)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("baseline survived reorder")
	}
}

func TestPublicAPISchemaTools(t *testing.T) {
	ds := PublicationsDataset(60, 19)
	s := InferSchema("pubs", ds.Doc)
	if s.Root != "db" {
		t.Errorf("inferred root = %q", s.Root)
	}
	keys, err := DiscoverKeys(ds.Doc, s)
	if err != nil {
		t.Fatal(err)
	}
	foundTitle := false
	for _, k := range keys {
		if k.Scope == "db/book" && k.KeyPath == "title" {
			foundTitle = true
		}
	}
	if !foundTitle {
		t.Errorf("title key not discovered: %v", keys)
	}
	fds, err := DiscoverFDs(ds.Doc, s)
	if err != nil {
		t.Fatal(err)
	}
	foundFD := false
	for _, f := range fds {
		if f.Determinant == "editor" && f.Dependent == "@publisher" {
			foundFD = true
		}
	}
	if !foundFD {
		t.Errorf("editor->publisher FD not discovered: %v", fds)
	}
}

func TestPublicAPISerialization(t *testing.T) {
	doc, err := ParseXMLString(`<db><book><title>T</title></book></db>`)
	if err != nil {
		t.Fatal(err)
	}
	out := SerializeXMLString(doc)
	if !strings.Contains(out, "<title>T</title>") {
		t.Errorf("serialize: %q", out)
	}
	doc2, err := ParseXMLString(out)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Root().Name != "db" {
		t.Errorf("round trip root = %q", doc2.Root().Name)
	}
	var sb strings.Builder
	if err := SerializeXML(&sb, doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<?xml") {
		t.Errorf("SerializeXML missing declaration")
	}
}

func TestPublicAPIReceiptSerialization(t *testing.T) {
	ds := PublicationsDataset(150, 23)
	sys := newPubSystem(t, ds, "ser", "ser-mark")
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalReceipt(receipt.Records)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalReceipt(data)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(doc, back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Errorf("detection after receipt round trip failed")
	}
}

func TestPublicAPIOptionValidation(t *testing.T) {
	ds := PublicationsDataset(10, 1)
	if _, err := New(Options{Mark: "m", Schema: ds.Schema}); err == nil {
		t.Errorf("missing key accepted")
	}
	if _, err := New(Options{Key: "k", Schema: ds.Schema}); err == nil {
		t.Errorf("missing mark accepted")
	}
	if _, err := New(Options{Key: "k", Mark: "m"}); err == nil {
		t.Errorf("missing schema accepted")
	}
	if _, err := New(Options{Key: "k", MarkBits: Bits{1, 0}, Schema: ds.Schema}); err != nil {
		t.Errorf("MarkBits alone rejected: %v", err)
	}
}

func TestPublicAPIRedundancyAttackFlow(t *testing.T) {
	ds := LibraryDataset(200, 29)
	sys, err := New(Options{
		Key: "lib", Mark: "lib-mark", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(31))
	attacked, err := NewRedundancyRemovalAttack(ds.Catalog.FDs).Apply(doc, r)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(attacked, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected || det.MatchFraction < 0.99 {
		t.Errorf("FD-aware watermark damaged by redundancy removal: %+v", det)
	}
}

func TestStreamAPI(t *testing.T) {
	ds := PublicationsDataset(120, 71)
	sys := newPubSystem(t, ds, "stream-key", "stream-mark")
	var marked strings.Builder
	src := SerializeXMLString(ds.Doc)
	receipt, err := sys.EmbedStream(strings.NewReader(src), &marked)
	if err != nil {
		t.Fatal(err)
	}
	if receipt.Carriers == 0 {
		t.Fatalf("stream embed produced no carriers")
	}
	det, err := sys.DetectStream(strings.NewReader(marked.String()), receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected || det.MatchFraction != 1.0 {
		t.Errorf("stream round trip: %+v", det)
	}
	// Garbage input surfaces parse errors.
	if _, err := sys.EmbedStream(strings.NewReader("<broken"), &marked); err == nil {
		t.Errorf("broken stream accepted by EmbedStream")
	}
	if _, err := sys.DetectStream(strings.NewReader("<broken"), receipt.Records, nil); err == nil {
		t.Errorf("broken stream accepted by DetectStream")
	}
}
