module wmxml

go 1.24
