// Quickstart: watermark the paper's figure-1 document and detect the
// mark again — the complete WmXML workflow in one page.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wmxml"
)

// db1 is the publication database of the paper's figure 1(a), extended
// with a third book so the editor → publisher redundancy is visible.
const db1 = `<db>
  <book publisher="mkp">
    <title>Readings in Database Systems</title>
    <author>Stonebraker</author>
    <author>Hellerstein</author>
    <editor>Harrypotter</editor>
    <year>1998</year>
  </book>
  <book publisher="acm">
    <title>Database Design</title>
    <author>Berstein</author>
    <author>Newcomer</author>
    <editor>Gamer</editor>
    <year>1998</year>
  </book>
  <book publisher="mkp">
    <title>XML Query Processing</title>
    <author>Stonebraker</author>
    <editor>Harrypotter</editor>
    <year>2001</year>
  </book>
</db>`

func main() {
	doc, err := wmxml.ParseXMLString(db1)
	if err != nil {
		log.Fatal(err)
	}

	// Step 0 — understand the data: infer a schema and discover the
	// semantics WmXML builds identifiers from.
	sch := wmxml.InferSchema("db1", doc)
	keys, err := wmxml.DiscoverKeys(doc, sch)
	if err != nil {
		log.Fatal(err)
	}
	fds, err := wmxml.DiscoverFDs(doc, sch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered keys:")
	for _, k := range keys {
		fmt.Printf("  %s\n", k)
	}
	fmt.Println("discovered FDs:")
	for _, f := range fds {
		fmt.Printf("  %s\n", f)
	}

	// Step 1 — initialization (paper §2.2): schema, key/FD catalog,
	// secret key, watermark, target fields.
	sys, err := wmxml.New(wmxml.Options{
		Key:    "quickstart-secret-key",
		Mark:   "(C) VLDB05",
		Schema: sch,
		Catalog: wmxml.Catalog{
			Keys: []wmxml.Key{{Scope: "db/book", KeyPath: "title"}},
			FDs:  []wmxml.FD{{Scope: "db/book", Determinant: "editor", Dependent: "@publisher"}},
		},
		Targets: []string{"db/book/year", "db/book/@publisher"},
		Gamma:   1, // tiny document: let every unit carry a bit
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2 — watermark insertion. The receipt holds Q, the identifying
	// queries to safeguard together with the key.
	receipt, err := sys.Embed(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nembedded: %d bandwidth units, %d carriers, %d values written\n",
		receipt.BandwidthUnits, receipt.Carriers, receipt.ValuesWritten)
	fmt.Println("identity queries (Q):")
	for _, r := range receipt.Records {
		fmt.Printf("  %s\n", r.Query)
	}

	fmt.Println("\nwatermarked document:")
	fmt.Println(wmxml.SerializeXMLString(doc))

	// Step 3 — watermark detection: run the safeguarded queries and
	// majority-vote the bits.
	det, err := sys.Detect(doc, receipt.Records, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection: detected=%v match=%.2f coverage=%.2f\n",
		det.Detected, det.MatchFraction, det.Coverage)

	// A party without the key finds nothing.
	forged, err := wmxml.New(wmxml.Options{
		Key: "some-other-key", Mark: "(C) VLDB05", Schema: sch,
		Catalog: wmxml.Catalog{Keys: []wmxml.Key{{Scope: "db/book", KeyPath: "title"}}},
		Targets: []string{"db/book/year", "db/book/@publisher"},
		Gamma:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fdet, err := forged.Detect(doc, receipt.Records, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong key:  detected=%v match=%.2f\n", fdet.Detected, fdet.MatchFraction)
}
