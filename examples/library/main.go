// Digital library: the paper's second motivating scenario — "a
// commercial digital library also would need to safeguard its copyright
// over its collection of knowledge information."
//
// The library's items carry base64 thumbnail images; this example embeds
// watermark bits through the binary/image plug-in (WA for images in the
// paper's figure 4), then survives a reduction attack and a redundancy-
// removal attack against the category → shelf FD.
//
//	go run ./examples/library
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wmxml"
)

func main() {
	ds := wmxml.LibraryDataset(400, 7)
	fmt.Println("dataset: 400 library items with thumbnail payloads")
	fmt.Printf("key: %s; FD: %s\n\n", ds.Catalog.Keys[0], ds.Catalog.FDs[0])

	// Mark only the binary channel plus the FD-protected shelf field:
	// pages/ratings stay byte-identical. γ=1 marks every thumbnail so
	// even a heavily reduced mirror keeps enough coverage.
	sys, err := wmxml.New(wmxml.Options{
		Key:     "library-curator-key",
		Mark:    "(C) DigiLib",
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: []string{"library/item/thumb", "library/item/shelf"},
		Gamma:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	published := ds.Doc.Clone()
	receipt, err := sys.Embed(published)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %d carriers (%d values; thumbnails via LSB, shelves via the text plug-in)\n",
		receipt.Carriers, receipt.ValuesWritten)

	meter, err := wmxml.NewUsabilityMeter(ds.Doc, ds.Templates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("usability after embedding: %.3f\n\n", meter.Measure(published, nil).Usability())

	// Attack 1: a pirate mirrors only a quarter of the collection.
	r := rand.New(rand.NewSource(99))
	subset, err := wmxml.NewReductionAttack("library/item", 0.25).Apply(published.Clone(), r)
	if err != nil {
		log.Fatal(err)
	}
	det, err := sys.Detect(subset, receipt.Records, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pirate mirrors 25%% of the items: detected=%v match=%.3f coverage=%.3f\n",
		det.Detected, det.MatchFraction, det.Coverage)

	// Attack 2: the pirate notices shelves repeat per category and
	// normalizes them, hoping the duplicates carried different bits.
	norm, err := wmxml.NewRedundancyRemovalAttack(ds.Catalog.FDs).Apply(published.Clone(), r)
	if err != nil {
		log.Fatal(err)
	}
	det2, err := sys.Detect(norm, receipt.Records, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pirate normalizes category→shelf duplicates: detected=%v match=%.3f\n",
		det2.Detected, det2.MatchFraction)
	fmt.Println("  (FD-canonical identities give every duplicate the same bit — the attack is a no-op)")

	// Attack 3: heavy thumbnail tampering — the binary channel is noisy
	// but the majority vote still reads the mark.
	noisy, err := wmxml.NewAlterationAttack(0.3).Apply(published.Clone(), r)
	if err != nil {
		log.Fatal(err)
	}
	det3, err := sys.Detect(noisy, receipt.Records, nil)
	if err != nil {
		log.Fatal(err)
	}
	u := meter.Measure(noisy, nil)
	fmt.Printf("30%% of all values tampered: detected=%v match=%.3f usability=%.3f\n",
		det3.Detected, det3.MatchFraction, u.Usability())
}
