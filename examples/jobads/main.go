// Job advertisements: the motivating example of the paper's
// introduction — "a job agent's web site, who would like to prevent his
// job advertisements from being stolen and posted on other web sites."
//
// A thief copies the feed, alters some values to cover the theft and
// republishes a subset. This example shows that the watermark survives
// exactly as long as the stolen data is still worth stealing: detection
// holds while usability degrades, and the attack levels that would kill
// the mark leave the feed useless.
//
//	go run ./examples/jobads
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wmxml"
)

func main() {
	// The agent's feed: 500 ads; ref is the key, company → city is an FD.
	ds := wmxml.JobsDataset(500, 42)
	fmt.Printf("dataset: %d job ads\n", 500)
	fmt.Printf("key: %s; FD: %s\n\n", ds.Catalog.Keys[0], ds.Catalog.FDs[0])

	// Mark length vs capacity: the feed offers ~1050 bandwidth units and
	// γ=3 selects ~350 carriers, comfortably covering a 120-bit mark.
	sys, err := wmxml.New(wmxml.Options{
		Key:     "job-agent-master-key",
		Mark:    "(C) JobAgent 05",
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: ds.Targets, // salary, experience, city
		Gamma:   3,
	})
	if err != nil {
		log.Fatal(err)
	}

	published := ds.Doc.Clone()
	receipt, err := sys.Embed(published)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published feed watermarked: %d carriers over %d units\n",
		receipt.Carriers, receipt.BandwidthUnits)

	// The agent's usability yardstick: the queries his customers run.
	meter, err := wmxml.NewUsabilityMeter(ds.Doc, ds.Templates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("usability of the watermarked feed: %.3f (imperceptible)\n\n",
		meter.Measure(published, nil).Usability())

	// The thief applies increasingly brutal cover-up edits.
	fmt.Println("alter%   subset%   detected   match   usability")
	for _, severity := range []struct{ alter, keep float64 }{
		{0.00, 1.00},
		{0.10, 0.90},
		{0.25, 0.70},
		{0.50, 0.50},
		{0.80, 0.30},
	} {
		stolen := published.Clone()
		r := rand.New(rand.NewSource(int64(severity.alter*100) + int64(severity.keep*10)))
		stolen, err = wmxml.NewAlterationAttack(severity.alter).Apply(stolen, r)
		if err != nil {
			log.Fatal(err)
		}
		stolen, err = wmxml.NewReductionAttack("jobs/job", severity.keep).Apply(stolen, r)
		if err != nil {
			log.Fatal(err)
		}
		det, err := sys.Detect(stolen, receipt.Records, nil)
		if err != nil {
			log.Fatal(err)
		}
		u := meter.Measure(stolen, nil)
		fmt.Printf("%5.0f%%   %6.0f%%   %-8v   %.3f   %.3f\n",
			severity.alter*100, severity.keep*100, det.Detected, det.MatchFraction, u.Usability())
	}
	fmt.Println("\nthe watermark outlives the data: by the time detection fails,")
	fmt.Println("the stolen feed no longer answers its customers' queries.")
}
