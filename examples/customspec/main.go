// Custom documents via JSON specs: watermark YOUR data, not the built-in
// datasets. This example defines a small product-catalog document type
// entirely as a JSON spec (schema + key + FD + targets + templates),
// loads it, and runs the full embed → attack → detect pipeline.
//
//	go run ./examples/customspec
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wmxml"
)

// The document type, as a user would keep it on disk (wmxml --spec).
const productSpec = `{
  "name": "products",
  "schema": {
    "root": "shop",
    "elements": {
      "shop":     {"children": [{"name": "product", "max": -1}]},
      "product":  {"children": [{"name": "sku", "min": 1, "max": 1},
                                {"name": "name", "min": 1, "max": 1},
                                {"name": "brand", "min": 1, "max": 1},
                                {"name": "country", "min": 1, "max": 1},
                                {"name": "stock", "min": 1, "max": 1}]},
      "sku":      {"type": "string"},
      "name":     {"type": "string"},
      "brand":    {"type": "string"},
      "country":  {"type": "string"},
      "stock":    {"type": "integer"}
    }
  },
  "keys": [{"scope": "shop/product", "path": "sku"}],
  "fds":  [{"scope": "shop/product", "determinant": "brand", "dependent": "country"}],
  "targets":   ["shop/product/stock", "shop/product/country"],
  "templates": ["shop/product[sku]/name",
                "shop/product[sku]/stock",
                "shop/product[sku]/brand"]
}`

func main() {
	parts, err := wmxml.LoadSpec([]byte(productSpec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded spec %q: root <%s>, %d keys, %d FDs\n",
		parts.Name, parts.Schema.Root, len(parts.Catalog.Keys), len(parts.Catalog.FDs))

	// Build a custom document. Brands determine countries (the FD), SKUs
	// are unique (the key).
	doc := buildShop(400)
	if vs := parts.Schema.Validate(doc); len(vs) > 0 {
		log.Fatalf("document does not match spec: %v", vs[0])
	}
	fmt.Println("custom document validates against the spec")

	sys, err := wmxml.New(wmxml.Options{
		Key:           "shopkeeper-key",
		Mark:          "(C) MyShop",
		Schema:        parts.Schema,
		Catalog:       parts.Catalog,
		Targets:       parts.Targets,
		Gamma:         3,
		ValidateInput: true,
		// Stock counts can be small (~50); embed at depth 1 there so the
		// perturbation (±1) stays inside the usability tolerance.
		XiByTarget: map[string]int{"shop/product/stock": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	receipt, err := sys.Embed(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded: %d carriers over %d units\n", receipt.Carriers, receipt.BandwidthUnits)

	meter, err := wmxml.NewUsabilityMeter(buildShop(400), parts.Templates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("usability after embedding: %.3f\n\n", meter.Measure(doc, nil).Usability())

	// A competitor scrapes the catalog, tweaks stock numbers and drops
	// half the products.
	r := rand.New(rand.NewSource(11))
	stolen, err := wmxml.NewAlterationAttack(0.2).Apply(doc.Clone(), r)
	if err != nil {
		log.Fatal(err)
	}
	stolen, err = wmxml.NewReductionAttack("shop/product", 0.5).Apply(stolen, r)
	if err != nil {
		log.Fatal(err)
	}
	det, err := sys.Detect(stolen, receipt.Records, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 20%% alteration + 50%% reduction:\n")
	fmt.Printf("  detected=%v match=%.3f coverage=%.3f\n", det.Detected, det.MatchFraction, det.Coverage)
	fmt.Printf("  confidence: sigma=%.1f, random-match probability %.2e\n", det.Sigma, det.FalsePositiveRate)
	fmt.Printf("  usability of the stolen copy: %.3f\n", meter.Measure(stolen, nil).Usability())
}

// buildShop constructs the custom document deterministically.
func buildShop(n int) *wmxml.Document {
	type brand struct{ name, country string }
	brands := []brand{
		{"Nordwind", "Norway"}, {"Kirin Labs", "Japan"}, {"Alpenglow", "Austria"},
		{"Meridian", "Brazil"}, {"Sable", "Canada"},
	}
	adjectives := []string{"Compact", "Pro", "Ultra", "Eco", "Prime", "Smart"}
	nouns := []string{"Kettle", "Lamp", "Router", "Speaker", "Grinder", "Monitor"}
	r := rand.New(rand.NewSource(7))
	var sb []byte
	sb = append(sb, "<shop>"...)
	for i := 0; i < n; i++ {
		b := brands[r.Intn(len(brands))]
		sb = append(sb, fmt.Sprintf(
			"<product><sku>SKU-%05d</sku><name>%s %s</name><brand>%s</brand><country>%s</country><stock>%d</stock></product>",
			i+1, adjectives[r.Intn(len(adjectives))], nouns[r.Intn(len(nouns))],
			b.name, b.country, 50+r.Intn(900))...)
	}
	sb = append(sb, "</shop>"...)
	doc, err := wmxml.ParseXMLString(string(sb))
	if err != nil {
		log.Fatal(err)
	}
	return doc
}
