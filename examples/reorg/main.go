// Re-organization walkthrough: the paper's figure 1 and figure 2 end to
// end. An adversary re-shreds db1.xml into the db2.xml layout; the
// original identity queries stop matching, the query rewriter translates
// them through the schema mapping, and detection recovers — while the
// structure-labelled baseline scheme collapses to coin-flipping.
//
//	go run ./examples/reorg
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wmxml"
)

func main() {
	ds := wmxml.PublicationsDataset(300, 2005)
	sys, err := wmxml.New(wmxml.Options{
		Key:     "figure1-demo-key",
		Mark:    "(C) WmXML demo",
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: ds.Targets,
		Gamma:   4,
	})
	if err != nil {
		log.Fatal(err)
	}

	marked := ds.Doc.Clone()
	receipt, err := sys.Embed(marked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watermarked db1-style document: %d carriers\n", receipt.Carriers)
	fmt.Printf("sample identity query: %s\n\n", receipt.Records[0].Query)

	// Also mark an identical copy with the structure-labelled baseline
	// for comparison.
	mark := wmxml.MarkFromText("(C) WmXML demo")
	baselineDoc := ds.Doc.Clone()
	if err := wmxml.BaselineEmbed(baselineDoc, "figure1-demo-key", mark); err != nil {
		log.Fatal(err)
	}

	// The attack: re-organize into the figure-1(b) layout — books
	// regrouped under publisher and editor, publisher de-duplicated.
	m := wmxml.PublicationsMapping()
	reorg, err := wmxml.Reorganize(marked, m)
	if err != nil {
		log.Fatal(err)
	}
	baseReorg, err := wmxml.NewReorganizationAttack(m).Apply(baselineDoc, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("document re-organized (figure 1): books now grouped by publisher/editor")

	// Detection without rewriting: the original queries address a layout
	// that no longer exists.
	raw, err := sys.Detect(reorg, receipt.Records, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetect with original queries:   detected=%v (all %d queries miss)\n",
		raw.Detected, raw.QueryMisses)

	// Detection with rewriting (figure 2): every query is translated
	// through the mapping and retrieves the same elements.
	rw, err := wmxml.NewRewriter(m)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := sys.Detect(reorg, receipt.Records, rw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detect with rewritten queries:  detected=%v match=%.3f coverage=%.3f\n",
		fixed.Detected, fixed.MatchFraction, fixed.Coverage)

	// Show one rewriting, like the paper's §2.2 example.
	q, err := wmxml.CompileQuery("/db/book[editor='" + firstEditor(ds) + "']/@publisher")
	if err != nil {
		log.Fatal(err)
	}
	rq, err := rw.RewriteQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery rewriting (figure 2):\n  before: %s\n  after:  %s\n", q, rq)

	// The baseline cannot follow: its labels were the structure.
	ok, match, err := wmxml.BaselineDetect(baseReorg, "figure1-demo-key", mark)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstructure-labelled baseline after re-organization: detected=%v match=%.3f (chance)\n",
		ok, match)

	// And the information content survived: usability through the
	// rewriter is perfect.
	meter, err := wmxml.NewUsabilityMeter(ds.Doc, ds.Templates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nusability of the re-organized document (rewritten templates): %.3f\n",
		meter.Measure(reorg, rw).Usability())
}

func firstEditor(ds *wmxml.Dataset) string {
	q, err := wmxml.CompileQuery("/db/book/editor")
	if err != nil {
		log.Fatal(err)
	}
	items := q.Select(ds.Doc)
	if len(items) == 0 {
		log.Fatal("no editors")
	}
	return items[0].Value()
}
