package wmxml

import (
	"bytes"
	"strings"
	"testing"
)

// TestDelivererPublicAPI pins the delivery surface: compile one plan,
// splice three recipients, prove splice ≡ full fingerprint, round-trip
// the plan through its JSON envelope, and refuse a mutated original.
func TestDelivererPublicAPI(t *testing.T) {
	ds := PublicationsDataset(200, 77)
	opts := FingerprintOptions{
		Key: "api-owner-key", Schema: ds.Schema, Catalog: ds.Catalog,
		Targets: ds.Targets, Gamma: 2,
	}
	d, err := NewDeliverer(opts)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := NewFingerprinter(opts)
	if err != nil {
		t.Fatal(err)
	}

	plan, canonical, err := d.CompilePlan(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if SerializeXMLString(ds.Doc) != string(canonical) {
		t.Fatal("CompilePlan mutated the document or canonicalized differently than SerializeXML")
	}

	for _, r := range []string{"alice", "bob", "carol"} {
		copyBytes, receipt, err := d.Deliver(plan, canonical, r)
		if err != nil {
			t.Fatalf("deliver %s: %v", r, err)
		}
		full := ds.Doc.Clone()
		fullReceipt, err := fp.Fingerprint(full, r)
		if err != nil {
			t.Fatal(err)
		}
		if string(copyBytes) != SerializeXMLString(full) {
			t.Fatalf("spliced %s copy differs from full fingerprint", r)
		}
		if receipt.Carriers != fullReceipt.Carriers || receipt.ValuesWritten != fullReceipt.ValuesWritten {
			t.Fatalf("receipt mismatch for %s: splice %d/%d, full %d/%d",
				r, receipt.Carriers, receipt.ValuesWritten, fullReceipt.Carriers, fullReceipt.ValuesWritten)
		}
		// Streaming splice agrees byte-for-byte.
		var sw bytes.Buffer
		if err := d.DeliverStream(&sw, bytes.NewReader(canonical), plan, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sw.Bytes(), copyBytes) {
			t.Fatalf("DeliverStream %s differs from Deliver", r)
		}
	}

	// The plan envelope round-trips and delivers identically.
	env, err := plan.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDeliveryPlan(env)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := d.Deliver(plan, canonical, "alice")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Deliver(back, canonical, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round-tripped plan delivers different bytes")
	}

	// A mutated original is refused, not spliced.
	mutated := append([]byte{}, canonical...)
	mutated[len(mutated)/2] ^= 0x01
	if _, _, err := d.Deliver(plan, mutated, "alice"); err == nil || !strings.Contains(err.Error(), "refus") {
		t.Fatalf("mutated original: err = %v, want refusal", err)
	}
}
