package wmxml

import (
	"context"
	"fmt"
	"io"

	"wmxml/internal/attack"
	"wmxml/internal/baseline"
	"wmxml/internal/config"
	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/deliver"
	"wmxml/internal/fingerprint"
	"wmxml/internal/identity"
	"wmxml/internal/index"
	"wmxml/internal/rewrite"
	"wmxml/internal/schema"
	"wmxml/internal/semantics"
	"wmxml/internal/stream"
	"wmxml/internal/structwm"
	"wmxml/internal/usability"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// Re-exported types. The library's working types live in internal
// packages (one per subsystem, see DESIGN.md); these aliases form the
// public surface so that downstream code imports only this package.
type (
	// Document is a mutable XML DOM node; documents parse to a node of
	// kind DocumentNode.
	Document = xmltree.Node
	// Schema declares the document structure and value types.
	Schema = schema.Schema
	// ElementDecl is one element declaration within a Schema.
	ElementDecl = schema.ElementDecl
	// Catalog bundles the semantic constraints (keys and FDs).
	Catalog = semantics.Catalog
	// Key declares a key constraint (Scope, KeyPath).
	Key = semantics.Key
	// FD declares a functional dependency (Scope, Determinant, Dependent).
	FD = semantics.FD
	// Mapping relates two layouts of the same records for
	// re-organization and query rewriting.
	Mapping = rewrite.Mapping
	// QueryRecord is one safeguarded identity query (an entry of Q).
	QueryRecord = core.QueryRecord
	// Query is a compiled XPath-subset expression.
	Query = xpath.Query
	// Bits is a watermark bit string.
	Bits = wmark.Bits
	// Dataset is a generated workload with schema, catalog, targets and
	// usability templates.
	Dataset = datagen.Dataset
	// Attack transforms a document adversarially.
	Attack = attack.Attack
	// UsabilityMeter measures template correctness against an original.
	UsabilityMeter = usability.Meter
	// UsabilityScore is a usability measurement.
	UsabilityScore = usability.Score
	// Rewriter rewrites queries across a schema mapping.
	Rewriter = core.Rewriter
	// ParseOptions controls XML parsing (whitespace, comments,
	// processing instructions, depth limit).
	ParseOptions = xmltree.ParseOptions
	// DocumentIndex is a per-document query accelerator: build it once
	// over a document and pass it to the *Indexed methods to share the
	// cost across many detections. See internal/index for the
	// invalidation contract.
	DocumentIndex = index.Index
)

// Re-exported data types for schema declarations.
const (
	TypeString  = schema.TypeString
	TypeInteger = schema.TypeInteger
	TypeDecimal = schema.TypeDecimal
	TypeImage   = schema.TypeImage
	TypeNone    = schema.TypeNone
)

// ParseXML reads an XML document into a mutable DOM with default
// options (whitespace-only text, comments and processing instructions
// dropped).
func ParseXML(r io.Reader) (*Document, error) {
	return xmltree.Parse(r, xmltree.ParseOptions{})
}

// ParseXMLWithOptions reads an XML document into a mutable DOM with
// explicit parse options.
func ParseXMLWithOptions(r io.Reader, opts ParseOptions) (*Document, error) {
	return xmltree.Parse(r, opts)
}

// ParseXMLString parses an XML document from a string.
func ParseXMLString(s string) (*Document, error) {
	return xmltree.ParseString(s)
}

// ParseXMLBytes parses an XML document from an in-memory byte slice
// through the fast byte tokenizer (interned names, slab-allocated
// nodes), falling back to the strict reader-based parser for anything
// outside its subset. The tree is identical to ParseXMLWithOptions on
// the same bytes and never aliases data.
func ParseXMLBytes(data []byte, opts ParseOptions) (*Document, error) {
	return xmltree.ParseBytes(data, opts)
}

// SerializeXML renders a document as pretty-printed XML.
func SerializeXML(w io.Writer, doc *Document) error {
	return xmltree.Serialize(w, doc, xmltree.SerializeOptions{Indent: "  "})
}

// SerializeXMLString renders a document as a pretty-printed XML string.
func SerializeXMLString(doc *Document) string {
	return xmltree.SerializeIndentString(doc)
}

// CompileQuery compiles an XPath-subset expression.
func CompileQuery(src string) (*Query, error) { return xpath.Compile(src) }

// InferSchema derives a schema from a document instance, as a starting
// point for the user to refine.
func InferSchema(name string, doc *Document) *Schema {
	return schema.Infer(name, doc)
}

// DiscoverKeys proposes key constraints supported by the document.
func DiscoverKeys(doc *Document, s *Schema) ([]Key, error) {
	return semantics.DiscoverKeys(doc, s, 2)
}

// DiscoverFDs proposes functional dependencies supported by the
// document, most-redundancy first.
func DiscoverFDs(doc *Document, s *Schema) ([]FD, error) {
	found, err := semantics.DiscoverFDs(doc, s, 2)
	if err != nil {
		return nil, err
	}
	out := make([]FD, len(found))
	for i, d := range found {
		out[i] = d.FD
	}
	return out, nil
}

// Options configures a watermarking System.
type Options struct {
	// Key is the secret key; required.
	Key string
	// Mark is the watermark message (text); required unless MarkBits is
	// set.
	Mark string
	// MarkBits overrides Mark with explicit bits.
	MarkBits Bits
	// Schema describes the documents to be watermarked; required.
	Schema *Schema
	// Catalog supplies keys and FDs; at least one key is needed for
	// semantic identities.
	Catalog Catalog
	// Targets are the watermark-carrying fields as name paths
	// ("db/book/year", "db/book/@publisher"). Empty auto-derives from
	// the schema and catalog.
	Targets []string
	// Gamma is the selection ratio (default 10): about 1 in Gamma
	// bandwidth units carries a bit.
	Gamma int
	// Xi is the number of candidate low-order embedding positions
	// (default 4). Larger xi hides bits better but perturbs more.
	Xi int
	// XiByTarget overrides Xi per target ("scope/field" name path) so
	// small-scale fields can carry bits at a shallower, still
	// imperceptible depth.
	XiByTarget map[string]int
	// Tau is the detection match threshold (default 0.85).
	Tau float64
	// MinCoverage is the minimum fraction of mark bits that must receive
	// votes for detection (default 0.5).
	MinCoverage float64
	// DisableFDs switches off FD canonicalization (exposes the
	// redundancy-removal weakness; for ablations only).
	DisableFDs bool
	// ValidateInput validates documents against Schema before embedding.
	ValidateInput bool
	// Concurrency bounds the worker goroutines used inside a single
	// Embed/Detect call for per-carrier work (0 or 1: sequential;
	// N > 1: up to N workers). Results are bit-for-bit identical at any
	// setting. Large single documents benefit from N > 1; corpus runs
	// usually keep this at 1 and parallelize across documents with a
	// Pipeline instead, since the two multiply.
	Concurrency int
	// DisableIndex turns off the per-document index and compiled query
	// plans, forcing every query through the tree-walking evaluator.
	// Results are bit-for-bit identical either way; for benchmarking
	// and equivalence testing only.
	DisableIndex bool
}

// System embeds and detects watermarks for one document type.
type System struct {
	cfg core.Config
}

// New builds a System from Options.
func New(opts Options) (*System, error) {
	if opts.Key == "" {
		return nil, fmt.Errorf("wmxml: Options.Key is required")
	}
	mark := opts.MarkBits
	if len(mark) == 0 {
		if opts.Mark == "" {
			return nil, fmt.Errorf("wmxml: Options.Mark or Options.MarkBits is required")
		}
		mark = wmark.FromText(opts.Mark)
	}
	if opts.Schema == nil {
		return nil, fmt.Errorf("wmxml: Options.Schema is required")
	}
	cfg := core.Config{
		Key:         []byte(opts.Key),
		Mark:        mark,
		Gamma:       opts.Gamma,
		Xi:          opts.Xi,
		XiByTarget:  opts.XiByTarget,
		Tau:         opts.Tau,
		MinCoverage: opts.MinCoverage,
		Schema:      opts.Schema,
		Catalog:     opts.Catalog,
		Identity: identity.Options{
			Targets:    opts.Targets,
			DisableFDs: opts.DisableFDs,
		},
		ValidateInput: opts.ValidateInput,
		Concurrency:   opts.Concurrency,
		DisableIndex:  opts.DisableIndex,
	}
	return &System{cfg: cfg}, nil
}

// EmbedReceipt is returned by Embed: the query set Q to safeguard with
// the key, plus capacity statistics.
type EmbedReceipt struct {
	// Records is Q, the identifying queries (paper §2.2 step 1:
	// "safeguard the set of queries … along with the secret key").
	Records []QueryRecord
	// BandwidthUnits is the document's usable watermark bandwidth.
	BandwidthUnits int
	// Carriers is the number of selected units.
	Carriers int
	// ValuesWritten is the number of physical values modified.
	ValuesWritten int
}

// Embed inserts the watermark into doc in place and returns the receipt.
func (s *System) Embed(doc *Document) (*EmbedReceipt, error) {
	res, err := core.Embed(doc, s.cfg)
	if err != nil {
		return nil, err
	}
	return &EmbedReceipt{
		Records:        res.Records,
		BandwidthUnits: res.Bandwidth.Units,
		Carriers:       res.Carriers,
		ValuesWritten:  res.Embedded,
	}, nil
}

// Detection is the outcome of a detection pass.
type Detection struct {
	// Detected reports whether the watermark was found (match >= tau and
	// coverage >= MinCoverage).
	Detected bool
	// MatchFraction is the fraction of voted watermark bits whose
	// majority equals the expected bit.
	MatchFraction float64
	// Coverage is the fraction of watermark bits that received votes.
	Coverage float64
	// RecoveredText decodes the majority-voted bits as text (only
	// meaningful when the mark was text and coverage is high).
	RecoveredText string
	// Sigma is the standard score of the match under the coin-flip null
	// hypothesis: how implausible this match is by chance.
	Sigma float64
	// FalsePositiveRate is the analytic probability that a random mark
	// would match at least this well on the voted bits.
	FalsePositiveRate float64
	// QueriesRun and QueryMisses report identity-query execution.
	QueriesRun, QueryMisses int
}

func toDetection(r *core.DetectResult) *Detection {
	return &Detection{
		Detected:          r.Detected,
		MatchFraction:     r.MatchFraction,
		Coverage:          r.Coverage,
		RecoveredText:     r.Recovered.Text(),
		Sigma:             r.Sigma(),
		FalsePositiveRate: wmark.FalsePositiveProbability(r.VotedBits, r.MatchFraction),
		QueriesRun:        r.QueriesRun,
		QueryMisses:       r.QueryMisses,
	}
}

// Detect runs the paper's detection: execute the safeguarded queries
// against the suspect document and compare the majority-voted bits with
// the expected mark. rw may be nil when the suspect kept the original
// schema; pass NewRewriter(mapping) after a re-organization.
func (s *System) Detect(doc *Document, records []QueryRecord, rw Rewriter) (*Detection, error) {
	res, err := core.DetectWithQueries(doc, s.cfg, records, rw)
	if err != nil {
		return nil, err
	}
	return toDetection(res), nil
}

// DetectBlind re-derives the carriers from the suspect document itself
// (no stored Q); it requires the document to still follow the original
// schema.
func (s *System) DetectBlind(doc *Document) (*Detection, error) {
	res, err := core.DetectBlind(doc, s.cfg)
	if err != nil {
		return nil, err
	}
	return toDetection(res), nil
}

// NewDocumentIndex builds a query-acceleration index over a document in
// one pass. Detect and DetectBlind already build one internally per
// call; build one explicitly to amortize it across multiple detections
// on the same document (e.g. checking several marks or keys), and pass
// it to the *Indexed methods. After mutating the document's values call
// Invalidate on the index; after structural changes call Rebuild.
func NewDocumentIndex(doc *Document) *DocumentIndex { return index.New(doc) }

// DetectIndexed is Detect reusing a caller-built document index over
// doc.
func (s *System) DetectIndexed(doc *Document, records []QueryRecord, rw Rewriter, ix *DocumentIndex) (*Detection, error) {
	res, err := core.DetectWithQueriesIndexed(doc, s.cfg, records, rw, ix)
	if err != nil {
		return nil, err
	}
	return toDetection(res), nil
}

// DetectBlindIndexed is DetectBlind reusing a caller-built document
// index over doc.
func (s *System) DetectBlindIndexed(doc *Document, ix *DocumentIndex) (*Detection, error) {
	res, err := core.DetectBlindIndexed(doc, s.cfg, ix)
	if err != nil {
		return nil, err
	}
	return toDetection(res), nil
}

// DetectionPlan is the compile-once / detect-many form of Detect: the
// safeguarded query set is parsed, rewritten and keyed exactly once at
// compile time, so each DetectIndexed call pays only the per-document
// work (index lookups and bit extraction) through pooled internal
// buffers. On a cached document index the warm path allocates close to
// nothing beyond the returned verdict. A plan is immutable and safe
// for concurrent use from any number of goroutines.
type DetectionPlan struct {
	plan *core.DecodePlan
}

// CompileDetection compiles Q into a reusable detection plan. rw may
// be nil when suspects keep the original schema. Verdicts from the
// plan are bit-for-bit identical to System.DetectIndexed with the same
// records and rewriter.
func (s *System) CompileDetection(records []QueryRecord, rw Rewriter) (*DetectionPlan, error) {
	p, err := core.CompileDecodePlan(s.cfg, records, rw)
	if err != nil {
		return nil, err
	}
	return &DetectionPlan{plan: p}, nil
}

// DetectIndexed runs the compiled plan against a suspect document. ix
// may be nil (an index is then built per call; pass a cached one to
// stay on the warm path).
func (p *DetectionPlan) DetectIndexed(doc *Document, ix *DocumentIndex) *Detection {
	return toDetection(p.plan.Detect(doc, ix))
}

// MarshalReceipt renders Q as JSON for safekeeping.
func MarshalReceipt(records []QueryRecord) ([]byte, error) {
	return core.MarshalQuerySet(records)
}

// UnmarshalReceipt parses a JSON query set.
func UnmarshalReceipt(data []byte) ([]QueryRecord, error) {
	return core.UnmarshalQuerySet(data)
}

// NewRewriter builds a query rewriter for a schema mapping, for
// detection and usability measurement on re-organized documents.
func NewRewriter(m Mapping) (*rewrite.QueryRewriter, error) {
	return rewrite.NewQueryRewriter(m)
}

// Reorganize re-shreds a document from the mapping's source layout to
// its target layout.
func Reorganize(doc *Document, m Mapping) (*Document, error) {
	return rewrite.Transform(doc, m)
}

// Figure1Mapping is the paper's figure-1 re-organization (flat book
// records regrouped under publisher and editor).
func Figure1Mapping() Mapping { return rewrite.Figure1Mapping() }

// PublicationsMapping is Figure1Mapping extended with the price field of
// the publications dataset, making the re-organization lossless for that
// workload.
func PublicationsMapping() Mapping { return rewrite.PublicationsMapping() }

// NewUsabilityMeter expands usability query templates over the original
// document (paper §2.1). Templates parameterize one predicate, e.g.
// "db/book[title]/author".
func NewUsabilityMeter(original *Document, templates []string) (*UsabilityMeter, error) {
	// Expansion runs one enumeration plus one expected-answer query per
	// probe against the original, so it shares one document index.
	return usability.NewMeterIndexed(original, templates, usability.Options{MaxProbes: 200}, index.New(original))
}

// --- attacks (the demonstration's part 2) ---

// NewAlterationAttack randomly alters the given fraction of values.
func NewAlterationAttack(fraction float64) Attack {
	return attack.ValueAlteration{Fraction: fraction}
}

// NewReductionAttack keeps only a random subset of the scope's records.
func NewReductionAttack(scope string, keepFraction float64) Attack {
	return attack.Reduction{Scope: scope, KeepFraction: keepFraction}
}

// NewReorganizationAttack re-shreds the document under the mapping.
func NewReorganizationAttack(m Mapping) Attack {
	return attack.Reorganization{Mapping: m}
}

// NewReorderAttack shuffles sibling and attribute order everywhere.
func NewReorderAttack() Attack { return attack.Reorder{} }

// NewRedundancyRemovalAttack normalizes the duplicate groups of the
// given FDs.
func NewRedundancyRemovalAttack(fds []FD) Attack {
	return attack.RedundancyRemoval{FDs: fds}
}

// --- datasets (synthetic workloads with planted semantics) ---

// PublicationsDataset generates a figure-1-style publication database.
func PublicationsDataset(books int, seed int64) *Dataset {
	return datagen.Publications(datagen.PubConfig{Books: books, Seed: seed})
}

// JobsDataset generates the introduction's job-advertisement workload.
func JobsDataset(jobs int, seed int64) *Dataset {
	return datagen.Jobs(datagen.JobsConfig{Jobs: jobs, Seed: seed})
}

// LibraryDataset generates a digital-library workload with image
// payloads.
func LibraryDataset(items int, seed int64) *Dataset {
	return datagen.Library(datagen.LibraryConfig{Items: items, Seed: seed})
}

// NestedDataset generates a catalog whose records are nested two levels
// deep (catalog/publisher/book), exercising multi-level scopes.
func NestedDataset(books int, seed int64) *Dataset {
	return datagen.NestedPublications(datagen.NestedConfig{Books: books, Seed: seed})
}

// DatasetByName resolves a built-in dataset preset by name ("pubs",
// "jobs", "library" or "nested") — the name set the CLI, the wmxmld
// owner records and the wmload harness share.
func DatasetByName(name string, records int, seed int64) (*Dataset, error) {
	return datagen.Preset(name, records, seed)
}

// --- structure-unit channel (paper §2.2 extension) ---

// StructureOptions configures the sibling-order watermark channel: one
// bit per record, carried by the relative order of the record's extreme
// Child values, identified by the record key. See internal/structwm and
// ablation A1 for its trade-offs.
type StructureOptions struct {
	Key     string
	Mark    Bits
	Scope   string // record set, e.g. "db/book"
	KeyPath string // record key, e.g. "title"
	Child   string // multi-valued child carrying the order bit, e.g. "author"
}

// StructureEmbed inserts a watermark into sibling order; no values
// change. Returns the number of carrier records.
func StructureEmbed(doc *Document, opts StructureOptions) (int, error) {
	res, err := structwm.Embed(doc, structwm.Config{
		Key: []byte(opts.Key), Mark: opts.Mark,
		Scope: opts.Scope, KeyPath: opts.KeyPath, Child: opts.Child,
	})
	if err != nil {
		return 0, err
	}
	return res.Carriers, nil
}

// StructureDetect reads the sibling-order watermark back and returns
// (detected, matchFraction).
func StructureDetect(doc *Document, opts StructureOptions) (bool, float64, error) {
	res, err := structwm.Detect(doc, structwm.Config{
		Key: []byte(opts.Key), Mark: opts.Mark,
		Scope: opts.Scope, KeyPath: opts.KeyPath, Child: opts.Child,
	})
	if err != nil {
		return false, 0, err
	}
	return res.Detection.Detected, res.Detection.MatchFraction, nil
}

// --- baseline (for comparisons) ---

// BaselineEmbed embeds with the structure-labelled baseline scheme [5].
func BaselineEmbed(doc *Document, key string, mark Bits) error {
	_, err := baseline.Embed(doc, baseline.Config{Key: []byte(key), Mark: mark})
	return err
}

// BaselineDetect detects the structure-labelled baseline watermark and
// returns (detected, matchFraction).
func BaselineDetect(doc *Document, key string, mark Bits) (bool, float64, error) {
	res, err := baseline.Detect(doc, baseline.Config{Key: []byte(key), Mark: mark})
	if err != nil {
		return false, 0, err
	}
	return res.Detection.Detected, res.Detection.MatchFraction, nil
}

// --- fingerprinting & traitor tracing (distribution chains) ---

// TraceResult is a ranked accusation list for one suspect document:
// who, among the known recipients, the leaked copy points to.
type TraceResult = fingerprint.TraceResult

// Accusation is one candidate recipient's tracing score.
type Accusation = fingerprint.Accusation

// CollusionStrategy names how a coalition composes a pirate copy.
type CollusionStrategy = attack.CollusionStrategy

// Collusion strategies for NewCollusionAttack.
const (
	CollusionMix      = attack.CollusionMix
	CollusionSegments = attack.CollusionSegments
	CollusionMajority = attack.CollusionMajority
)

// FingerprintOptions configures a Fingerprinter.
type FingerprintOptions struct {
	// Key is the owner's secret key; required. It derives every
	// recipient code — no codebook is stored anywhere.
	Key string
	// Schema describes the documents; required.
	Schema *Schema
	// Catalog supplies keys and FDs for semantic identities.
	Catalog Catalog
	// Targets are the watermark-carrying fields (empty auto-derives).
	Targets []string
	// Gamma is the carrier selection ratio (0 = default 10). Tracing
	// wants several votes per code bit; small documents need a small
	// gamma.
	Gamma int
	// Xi is the number of candidate low-order embedding positions.
	Xi int
	// Segments, SegmentBits and Replicas set the codebook geometry
	// (0 = the fingerprint package defaults: 8×12 bits, 2 replicas).
	Segments, SegmentBits, Replicas int
	// Alpha is the per-trace false-accusation budget (0 = 1e-3),
	// Bonferroni-split over the candidates.
	Alpha float64
	// Concurrency bounds per-call worker goroutines.
	Concurrency int
}

// Fingerprinter derives per-recipient codes, produces recipient copies
// and traces leaked documents back to recipients. Safe for concurrent
// use.
type Fingerprinter struct {
	fp *fingerprint.System
}

// NewFingerprinter builds a Fingerprinter.
func NewFingerprinter(opts FingerprintOptions) (*Fingerprinter, error) {
	fp, err := fingerprint.New(fingerprint.Options{
		Key:         []byte(opts.Key),
		Schema:      opts.Schema,
		Catalog:     opts.Catalog,
		Targets:     opts.Targets,
		Gamma:       opts.Gamma,
		Xi:          opts.Xi,
		Segments:    opts.Segments,
		SegmentBits: opts.SegmentBits,
		Replicas:    opts.Replicas,
		Alpha:       opts.Alpha,
		Concurrency: opts.Concurrency,
	})
	if err != nil {
		return nil, err
	}
	return &Fingerprinter{fp: fp}, nil
}

// RecipientCode returns the recipient's codeword (derived, never
// stored).
func (f *Fingerprinter) RecipientCode(recipient string) Bits {
	return f.fp.Code(recipient)
}

// Fingerprint embeds the recipient's code into doc in place — the copy
// to hand that recipient — and returns the receipt (safeguard Records
// like any embedding's Q).
func (f *Fingerprinter) Fingerprint(doc *Document, recipient string) (*EmbedReceipt, error) {
	res, err := f.fp.Embed(doc, recipient)
	if err != nil {
		return nil, err
	}
	return &EmbedReceipt{
		Records:        res.Records,
		BandwidthUnits: res.Bandwidth.Units,
		Carriers:       res.Carriers,
		ValuesWritten:  res.Embedded,
	}, nil
}

// Trace decodes the suspect document once and ranks every candidate
// recipient by how strongly the recovered code points at them. With
// records (any fingerprint receipt's Q, optionally rewritten through
// rw) the decode runs the safeguarded queries; with nil records it
// re-derives the carriers blind (original schema required). Sweeping N
// candidates costs one decode plus N bit comparisons.
func (f *Fingerprinter) Trace(doc *Document, candidates []string, records []QueryRecord, rw Rewriter) (*TraceResult, error) {
	return f.fp.Trace(doc, candidates, fingerprint.TraceOptions{Records: records, Rewriter: rw})
}

// TraceIndexed is Trace reusing a caller-built document index over doc
// — build one index per suspect and share it across repeated traces.
func (f *Fingerprinter) TraceIndexed(doc *Document, candidates []string, records []QueryRecord, rw Rewriter, ix *DocumentIndex) (*TraceResult, error) {
	return f.fp.Trace(doc, candidates, fingerprint.TraceOptions{Records: records, Rewriter: rw, Index: ix})
}

// NewCollusionAttack composes the attacked document with the given
// other fingerprinted copies into a pirate copy: "mix" interleaves
// records, "segments" cut-and-pastes contiguous runs, "majority" takes
// the per-value majority. scope is the record set, e.g. "db/book".
func NewCollusionAttack(copies []*Document, scope string, strategy CollusionStrategy) Attack {
	return attack.Collusion{Copies: copies, Scope: scope, Strategy: strategy}
}

// --- delivery-time fingerprinting (patch plans) ---

// DeliveryPlan is a precompiled patch plan for one document: byte
// offsets into the canonical serialization plus, per mark site, the
// alternative bytes for each codeword-bit value. Compiling costs one
// full embed pass; delivering any recipient's copy from the plan is a
// byte splice — no parsing, O(marked bytes) work. Plans marshal to a
// versioned JSON envelope (Marshal / UnmarshalDeliveryPlan) for storage.
type DeliveryPlan = deliver.Plan

// UnmarshalDeliveryPlan decodes a stored plan envelope, rejecting
// malformed plans and plans from newer versions.
func UnmarshalDeliveryPlan(data []byte) (*DeliveryPlan, error) {
	return deliver.UnmarshalPlan(data)
}

// Deliverer compiles delivery plans and splices recipient copies from
// them — the high-throughput distribution path. One CompilePlan serves
// every recipient of that document. Safe for concurrent use.
type Deliverer struct {
	fp *fingerprint.System
}

// NewDeliverer builds a Deliverer over the same options as a
// Fingerprinter; copies spliced from its plans are byte-identical to
// the Fingerprinter's full Fingerprint + SerializeXML output.
func NewDeliverer(opts FingerprintOptions) (*Deliverer, error) {
	fp, err := fingerprint.New(fingerprint.Options{
		Key:         []byte(opts.Key),
		Schema:      opts.Schema,
		Catalog:     opts.Catalog,
		Targets:     opts.Targets,
		Gamma:       opts.Gamma,
		Xi:          opts.Xi,
		Segments:    opts.Segments,
		SegmentBits: opts.SegmentBits,
		Replicas:    opts.Replicas,
		Alpha:       opts.Alpha,
		Concurrency: opts.Concurrency,
	})
	if err != nil {
		return nil, err
	}
	return &Deliverer{fp: fp}, nil
}

// CompilePlan runs the one parse-free-delivery-enabling pass: it
// canonicalizes doc (the SerializeXML shape) and records every mark
// site's offsets and per-bit alternative bytes. It returns the plan and
// the canonical bytes the plan's offsets index into; doc itself is not
// modified.
func (d *Deliverer) CompilePlan(doc *Document) (*DeliveryPlan, []byte, error) {
	return deliver.Compile(doc, d.fp.PlanConfig(), xmltree.SerializeOptions{Indent: "  "})
}

// Deliver splices recipient's copy from a compiled plan and the
// canonical original bytes, returning the copy and the same receipt a
// full Fingerprint of the document would have produced. The original is
// digest-checked against the plan before any splicing ("refused, not
// applied" on mismatch).
func (d *Deliverer) Deliver(plan *DeliveryPlan, original []byte, recipient string) ([]byte, *EmbedReceipt, error) {
	b, err := plan.Bind(original)
	if err != nil {
		return nil, nil, err
	}
	payload := d.fp.Payload(recipient)
	out, err := b.AppendCopy(nil, payload)
	if err != nil {
		return nil, nil, err
	}
	res, err := plan.Receipt(payload)
	if err != nil {
		return nil, nil, err
	}
	return out, &EmbedReceipt{
		Records:        res.Records,
		BandwidthUnits: res.Bandwidth.Units,
		Carriers:       res.Carriers,
		ValuesWritten:  res.Embedded,
	}, nil
}

// BoundPlan is a delivery plan already verified against its canonical
// original bytes — the ready-to-splice state. Bind once, splice many.
type BoundPlan = deliver.Bound

// Bind verifies original against the plan's digest and length and
// returns the ready-to-splice state. Use with Splice for
// many-recipient sweeps: binding hashes the whole original once, and
// each Splice afterwards touches only the marked bytes.
func (d *Deliverer) Bind(plan *DeliveryPlan, original []byte) (*BoundPlan, error) {
	return plan.Bind(original)
}

// Splice appends recipient's copy to dst (pass dst[:0] to reuse a
// buffer across recipients) and returns the extended slice. This is
// the per-copy hot path: derive the recipient's payload, then copy
// static segments and per-site alternatives — no parsing, no hashing.
func (d *Deliverer) Splice(b *BoundPlan, dst []byte, recipient string) ([]byte, error) {
	return b.AppendCopy(dst, d.fp.Payload(recipient))
}

// DeliverStream is Deliver for originals too large to hold in memory:
// it splices src (the canonical original bytes) onto w in constant
// memory. The digest is verified as src drains, so on error the bytes
// already written to w must be discarded.
func (d *Deliverer) DeliverStream(w io.Writer, src io.Reader, plan *DeliveryPlan, recipient string) error {
	return plan.ApplyReader(w, src, d.fp.Payload(recipient))
}

// StreamOptions tunes the record-chunked streaming layer: documents are
// split at their top-level record elements and processed in bounded
// batches, so peak memory is chunk size × workers, never document size.
type StreamOptions struct {
	// ChunkSize is the number of record elements per chunk (0 = 256).
	ChunkSize int
	// Workers bounds the chunk workers running concurrently
	// (0 = min(GOMAXPROCS, 8)).
	Workers int
	// RecordElements overrides auto-detection of the record element
	// names (normally derived from the targets' scopes — e.g. "book"
	// for a "db/book/year" target).
	RecordElements []string
	// MaxDepth caps XML nesting while scanning (0 = the xmltree
	// default).
	MaxDepth int
}

func (o StreamOptions) internal() stream.Options {
	return stream.Options{
		ChunkSize:      o.ChunkSize,
		Workers:        o.Workers,
		RecordElements: o.RecordElements,
		Parse:          xmltree.ParseOptions{MaxDepth: o.MaxDepth},
	}
}

// StreamStats reports how a streaming call executed: how many chunks
// and records flowed through, or why it fell back to the in-memory
// path (positional identities, ValidateInput, non-chunk-local query
// sets). Both paths produce byte-identical output.
type StreamStats = stream.Stats

// EmbedStream reads an XML document from r, embeds the watermark, and
// writes the marked document to w — the one-call form for file and
// pipe workflows. The document is processed in record chunks with peak
// memory bounded by chunk size, never document size, and the output
// (and receipt) is byte-identical to Embed + SerializeXML on the
// materialized document.
func (s *System) EmbedStream(r io.Reader, w io.Writer) (*EmbedReceipt, error) {
	rec, _, err := s.EmbedStreamContext(context.Background(), r, w, StreamOptions{})
	return rec, err
}

// EmbedStreamContext is EmbedStream with cancellation (the stream
// stops mid-document, between chunks) and explicit chunking options.
func (s *System) EmbedStreamContext(ctx context.Context, r io.Reader, w io.Writer, opts StreamOptions) (*EmbedReceipt, StreamStats, error) {
	res, err := stream.Embed(ctx, r, w, s.cfg, opts.internal())
	if err != nil {
		return nil, StreamStats{}, err
	}
	return &EmbedReceipt{
		Records:        res.Records,
		BandwidthUnits: res.Bandwidth.Units,
		Carriers:       res.Carriers,
		ValuesWritten:  res.Embedded,
	}, res.Stats, nil
}

// DetectStream reads a suspect XML document from r and runs detection
// against the safeguarded query set, chunk by chunk — the verdict is
// identical to Detect on the materialized document.
func (s *System) DetectStream(r io.Reader, records []QueryRecord, rw Rewriter) (*Detection, error) {
	det, _, err := s.DetectStreamContext(context.Background(), r, records, rw, StreamOptions{})
	return det, err
}

// DetectStreamContext is DetectStream with cancellation and explicit
// chunking options.
func (s *System) DetectStreamContext(ctx context.Context, r io.Reader, records []QueryRecord, rw Rewriter, opts StreamOptions) (*Detection, StreamStats, error) {
	res, stats, err := stream.Detect(ctx, r, s.cfg, records, rw, opts.internal())
	if err != nil {
		return nil, StreamStats{}, err
	}
	return toDetection(res), stats, nil
}

// DetectBlindStreamContext runs blind detection (carriers re-derived,
// no stored Q) over a streamed suspect document.
func (s *System) DetectBlindStreamContext(ctx context.Context, r io.Reader, opts StreamOptions) (*Detection, StreamStats, error) {
	res, stats, err := stream.DetectBlind(ctx, r, s.cfg, opts.internal())
	if err != nil {
		return nil, StreamStats{}, err
	}
	return toDetection(res), stats, nil
}

// MarkFromText encodes a text message as watermark bits.
func MarkFromText(msg string) Bits { return wmark.FromText(msg) }

// RandomMark derives a deterministic pseudo-random mark from a seed.
func RandomMark(seed string, bits int) Bits { return wmark.Random(seed, bits) }

// --- specs (JSON document-type definitions) ---

// SpecParts is a parsed document-type spec: everything needed to
// watermark documents of that type.
type SpecParts struct {
	Name      string
	Schema    *Schema
	Catalog   Catalog
	Targets   []string
	Templates []string
}

// LoadSpec parses a JSON spec (see internal/config for the format) into
// working objects.
func LoadSpec(data []byte) (*SpecParts, error) {
	spec, err := config.Parse(data)
	if err != nil {
		return nil, err
	}
	sch, err := spec.BuildSchema()
	if err != nil {
		return nil, err
	}
	return &SpecParts{
		Name:      spec.Name,
		Schema:    sch,
		Catalog:   spec.BuildCatalog(),
		Targets:   spec.Targets,
		Templates: spec.Templates,
	}, nil
}

// ExportSpec renders working objects as a JSON spec.
func ExportSpec(name string, sch *Schema, cat Catalog, targets, templates []string) ([]byte, error) {
	return config.FromParts(name, sch, cat, targets, templates).Marshal()
}

// LoadMapping parses a JSON schema mapping.
func LoadMapping(data []byte) (Mapping, error) { return config.ParseMapping(data) }

// ExportMapping renders a schema mapping as JSON.
func ExportMapping(m Mapping) ([]byte, error) { return config.MarshalMapping(m) }
