package wmxml

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServeHandlerRoundTrip drives the public serving API end to end:
// register an owner, embed a generated document, detect it through the
// registry with no query set in the request.
func TestServeHandlerRoundTrip(t *testing.T) {
	reg := NewMemoryRegistry()
	h, err := NewServerHandler(ServerOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	post := func(path string, body []byte) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		// The owner's key is the API credential on owner-scoped calls.
		req.Header.Set("Authorization", "Bearer k1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	if resp, body := post("/v1/owners", []byte(`{"id":"pub","key":"k1","mark":"(C) P","dataset":"pubs","gamma":3}`)); resp.StatusCode != 200 {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	ds := PublicationsDataset(120, 9)
	orig := SerializeXMLString(ds.Doc)
	resp, marked := post("/v1/embed?owner=pub", []byte(orig))
	if resp.StatusCode != 200 {
		t.Fatalf("embed: %d %s", resp.StatusCode, marked)
	}
	resp, verdict := post("/v1/detect?owner=pub", []byte(marked))
	if resp.StatusCode != 200 || !strings.Contains(verdict, `"detected": true`) {
		t.Fatalf("detect: %d %s", resp.StatusCode, verdict)
	}

	// The registry is shared state: the owner and receipt are visible
	// through the public registry aliases too.
	owner, err := reg.GetOwner("pub")
	if err != nil || owner.Mark != "(C) P" {
		t.Fatalf("GetOwner: %+v, %v", owner, err)
	}
	recs, err := reg.ListReceipts("pub")
	if err != nil || len(recs) != 1 || len(recs[0].Records) == 0 {
		t.Fatalf("ListReceipts: %+v, %v", recs, err)
	}
}

// TestServeDrainReadiness: cancelling Serve's context flips /readyz to
// 503 "draining" for the DrainDelay window before the listener closes,
// so load balancers stop routing new work ahead of the hard shutdown.
func TestServeDrainReadiness(t *testing.T) {
	// Reserve a port so the test can dial the server by address.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ServerOptions{
			Addr:           addr,
			DrainDelay:     2 * time.Second,
			HealthInterval: -1, // keep the test quiet
			LogWriter:      io.Discard,
		})
	}()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := get("/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	var sawDraining bool
	for time.Now().Before(deadline) {
		code, body := get("/readyz")
		if code == 0 {
			break // listener closed: the drain window ended
		}
		if code == http.StatusServiceUnavailable && strings.Contains(body, "draining") {
			sawDraining = true
			// Liveness must hold while readiness is down.
			if hcode, _ := get("/healthz"); hcode != http.StatusOK {
				t.Fatalf("/healthz during drain: %d", hcode)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("never observed /readyz 503 draining during the drain window")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not exit after the drain window")
	}
}

// TestServeGracefulShutdown: Serve exits nil when its context is
// cancelled.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ServerOptions{Addr: "127.0.0.1:0"})
	}()
	// Let the listener come up, then stop it.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not exit after cancel")
	}
}
