package wmxml

// The serving layer: the public face of internal/server and
// internal/registry, behind the `wmxmld` daemon. See DESIGN.md
// ("Serving layer") and the README's "Running the service" quickstart.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"wmxml/internal/obs"
	"wmxml/internal/registry"
	"wmxml/internal/server"
)

// Owner is one tenant of the watermarking service: id, secret key,
// watermark and document-type spec (a built-in dataset preset or a
// JSON spec).
type Owner = registry.Owner

// StoredReceipt is one embedding's safeguarded detection material in
// the receipt registry.
type StoredReceipt = registry.Receipt

// Recipient is one distribution target registered under an owner — a
// tracing candidate for /v1/trace.
type Recipient = registry.Recipient

// ReceiptStore is the multi-tenant owner/receipt registry contract.
type ReceiptStore = registry.Store

// ErrRegistryNotFound reports a missing owner or receipt.
var ErrRegistryNotFound = registry.ErrNotFound

// NewMemoryRegistry builds an in-process registry (tests, ephemeral
// deployments).
func NewMemoryRegistry() ReceiptStore { return registry.NewMemory() }

// OpenFileRegistry opens (or creates) a file-backed registry: a JSONL
// log with crash-safe fsync'd appends. Use Compact (via the concrete
// *registry.File) or wmxmld's --compact-on-start to fold a long log.
func OpenFileRegistry(path string) (ReceiptStore, error) {
	return registry.OpenFile(path, registry.FileOptions{})
}

// OpenShardedRegistry opens (or creates) a sharded file registry: a
// directory of per-shard JSONL logs, owners assigned by hash. Appends
// to different owners no longer serialize on one file lock, and
// compaction proceeds shard by shard. The shard count is fixed at
// creation and enforced on reopen.
func OpenShardedRegistry(dir string, shards int) (ReceiptStore, error) {
	return registry.OpenSharded(dir, shards, registry.FileOptions{})
}

// OpenKVRegistry opens (or creates) an embedded-KV registry: the same
// append-only crash-safe log, indexed by an in-memory key directory
// that holds offsets instead of records, so resident memory stays flat
// as plan payloads grow — values are read from disk on demand.
func OpenKVRegistry(path string) (ReceiptStore, error) {
	return registry.OpenKV(path, registry.FileOptions{})
}

// OpenRemoteRegistry connects to another wmxmld node's registry over
// its fleet API (`/internal/registry/` on the node holding the
// authoritative store), authenticated by the shared cluster key. With
// cacheTTL > 0 reads are served from a local ETag-validated cache for
// that long between revalidations; 0 revalidates on every read.
func OpenRemoteRegistry(baseURL, clusterKey string, cacheTTL time.Duration) (ReceiptStore, error) {
	return registry.OpenRemote(baseURL, registry.RemoteOptions{Key: clusterKey, CacheTTL: cacheTTL})
}

// ServerOptions configures the wmxmld HTTP service.
type ServerOptions struct {
	// Addr is the listen address for Serve (default ":8484").
	Addr string
	// Registry stores owners and receipts; nil uses a fresh in-memory
	// store (all state is lost on exit).
	Registry ReceiptStore
	// Workers bounds concurrently executing operations; 0 = GOMAXPROCS.
	Workers int
	// QueueTimeout is how long a request waits for a worker slot before
	// a 503 (0 = 10s).
	QueueTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = 32 MiB).
	MaxBodyBytes int64
	// MaxStreamBytes caps bodies of the streaming endpoints
	// (?mode=stream), which exist for documents larger than
	// MaxBodyBytes (0 = 4 GiB).
	MaxStreamBytes int64
	// StreamChunkSize is the records-per-chunk setting of the streaming
	// endpoints (0 = 256).
	StreamChunkSize int
	// MaxDepth caps XML nesting on parse (0 = the xmltree default).
	MaxDepth int
	// CacheEntries sizes the suspect-document LRU keyed by body hash
	// (0 = 128; negative disables).
	CacheEntries int
	// CacheBytes caps the suspect-document LRU's total weight in
	// source-body bytes (0 = 256 MiB; negative removes the byte bound).
	// Bodies larger than the cap are served but never cached.
	CacheBytes int64
	// AllowUnauthenticated disables the Bearer-key check on
	// owner-scoped endpoints. By default every embed/detect/verify/
	// receipts request must present the owner's secret key
	// (`Authorization: Bearer <key>`), and re-registering an existing
	// owner id requires the current key; only set this on networks
	// where every peer is already trusted with every tenant's secrets.
	AllowUnauthenticated bool
	// Version is the build version string surfaced in /healthz (empty
	// renders as "dev"). The daemon injects it via -ldflags.
	Version string
	// LogWriter receives structured log lines — one access-log record
	// per finished request plus error records with the full error chain
	// (error response bodies carry only a stable message and the request
	// id). nil writes to os.Stderr; io.Discard silences logging.
	LogWriter io.Writer
	// LogLevel is the minimum level: debug | info | warn | error
	// ("" = info).
	LogLevel string
	// LogFormat is json ("" = json) or text.
	LogFormat string
	// TraceRing is how many recent (and how many slowest) completed
	// request traces are retained for /debug/traces on the debug
	// listener. 0 means 32; negative disables span recording and
	// retention (request ids and logging still work).
	TraceRing int
	// DebugAddr, when non-empty, starts a second listener serving
	// net/http/pprof plus GET /debug/traces, /debug/slo and
	// /debug/captures. Keep it loopback-only or firewalled: traces and
	// SLO pages carry owner ids, document sizes and verdicts.
	DebugAddr string
	// SLODetectP99 is the default latency objective 99% of each
	// tenant's detect requests must meet (0 = 250ms; negative
	// disables). Per-owner override via the registry record's "slo"
	// field.
	SLODetectP99 time.Duration
	// SLOErrorRatio is the default tolerated 5xx fraction
	// (0 = 0.01; negative disables).
	SLOErrorRatio float64
	// HealthInterval is the runtime health collector's sampling period
	// for the wmxmld_go_* series (0 = 10s; negative disables).
	HealthInterval time.Duration
	// CaptureDir enables the anomaly watchdog: on a breached objective
	// or runtime threshold it writes a capture bundle (pprof profiles,
	// slowest traces, metrics and SLO snapshots, firing rule) into this
	// directory's bounded ring. Empty disables the watchdog.
	CaptureDir string
	// CaptureMax bounds the bundle ring (0 = 8; oldest evicted).
	CaptureMax int
	// CaptureCooldown gates refiring of one (rule, owner) pair (0 = 5m).
	CaptureCooldown time.Duration
	// CaptureCPUProfile is the CPU profile length recorded into each
	// bundle (0 = 5s; negative skips the CPU profile).
	CaptureCPUProfile time.Duration
	// WatchdogInterval is the anomaly rule evaluation period (0 = 10s).
	WatchdogInterval time.Duration
	// DrainDelay is how long Serve keeps answering 503 on /readyz
	// before closing listeners on shutdown — the window a load balancer
	// needs to observe the flip and stop routing here (0 = none).
	DrainDelay time.Duration
	// OwnerRefresh bounds how stale a compiled owner runtime may be
	// before the next request re-reads its registry record. 0 re-reads
	// on every request (right for a local registry); set it on fleet
	// nodes using a remote registry, where the per-request read is a
	// network round trip. Credentials are always checked.
	OwnerRefresh time.Duration
	// ClusterKey, when set, mounts the node-to-node registry API under
	// /internal/registry/ (Bearer-authenticated with this key). Set it
	// on the node holding a fleet's authoritative registry; peers
	// connect via OpenRemoteRegistry with the same key.
	ClusterKey string
	// FleetNodes lists every node address (http://host:port) of the
	// fleet. With two or more entries, owner-scoped requests are routed
	// by consistent hash to the owner's home node, so each owner warms
	// exactly one document cache instead of N competing ones. Clients
	// may still contact any node.
	FleetNodes []string
	// FleetSelf is this node's own address as listed in FleetNodes;
	// required when FleetNodes has two or more entries.
	FleetSelf string
}

// newServer builds the internal server from the public options.
func newServer(opts ServerOptions) (*server.Server, error) {
	reg := opts.Registry
	if reg == nil {
		reg = registry.NewMemory()
	}
	w := opts.LogWriter
	if w == nil {
		w = os.Stderr
	}
	return server.New(server.Options{
		Registry:             reg,
		Workers:              opts.Workers,
		QueueTimeout:         opts.QueueTimeout,
		MaxBodyBytes:         opts.MaxBodyBytes,
		MaxStreamBytes:       opts.MaxStreamBytes,
		StreamChunkSize:      opts.StreamChunkSize,
		MaxDepth:             opts.MaxDepth,
		CacheEntries:         opts.CacheEntries,
		CacheBytes:           opts.CacheBytes,
		AllowUnauthenticated: opts.AllowUnauthenticated,
		Version:              opts.Version,
		Logger:               obs.NewLogger(w, obs.LogOptions{Level: opts.LogLevel, Format: opts.LogFormat}),
		TraceRing:            opts.TraceRing,
		SLODetectP99:         opts.SLODetectP99,
		SLOErrorRatio:        opts.SLOErrorRatio,
		HealthInterval:       opts.HealthInterval,
		CaptureDir:           opts.CaptureDir,
		CaptureMax:           opts.CaptureMax,
		CaptureCooldown:      opts.CaptureCooldown,
		CaptureCPUProfile:    opts.CaptureCPUProfile,
		WatchdogInterval:     opts.WatchdogInterval,
		OwnerRefresh:         opts.OwnerRefresh,
		ClusterKey:           opts.ClusterKey,
		FleetNodes:           opts.FleetNodes,
		FleetSelf:            opts.FleetSelf,
	})
}

// NewServerHandler builds the wmxmld HTTP API as an http.Handler, for
// embedding into an existing server or test harness. The handler's
// background self-monitoring (runtime collector, watchdog) has no
// close path through this form — embedders who need clean teardown
// should disable them (HealthInterval < 0, no CaptureDir) or run
// Serve instead.
func NewServerHandler(opts ServerOptions) (http.Handler, error) {
	s, err := newServer(opts)
	if err != nil {
		return nil, err
	}
	return s.Handler(), nil
}

// Serve runs the wmxmld HTTP service until ctx is cancelled, then
// shuts down gracefully: GET /readyz flips to 503 first (and stays
// there for DrainDelay so load balancers can observe it), then
// listeners close and in-flight requests get up to 10 seconds to
// finish. When DebugAddr is set a second listener serves pprof,
// /debug/traces, /debug/slo and /debug/captures; it is torn down with
// the service. The returned error is nil after a clean shutdown.
func Serve(ctx context.Context, opts ServerOptions) error {
	s, err := newServer(opts)
	if err != nil {
		return err
	}
	defer s.Close()
	addr := opts.Addr
	if addr == "" {
		addr = ":8484"
	}
	// Request contexts deliberately do NOT derive from ctx: cancelling
	// ctx triggers the graceful Shutdown below, which lets in-flight
	// requests finish — deriving them would abort that same work
	// mid-request.
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	var debugSrv *http.Server
	if opts.DebugAddr != "" {
		// The operator surface: pprof plus the request-trace ring. Never
		// mounted on the service mux — see ServerOptions.DebugAddr.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debug := s.DebugHandler()
		dmux.Handle("/debug/traces", debug)
		dmux.Handle("/debug/slo", debug)
		dmux.Handle("/debug/captures", debug)
		debugSrv = &http.Server{
			Addr:              opts.DebugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go debugSrv.ListenAndServe()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	shutdownDebug := func() {
		if debugSrv != nil {
			shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			debugSrv.Shutdown(shutCtx)
		}
	}
	select {
	case err := <-errc:
		shutdownDebug()
		return err
	case <-ctx.Done():
		// Flip readiness before touching listeners: a load balancer that
		// probes /readyz must see 503 while the service still answers, or
		// it will keep routing new work into a closing socket.
		s.SetDraining(true)
		if opts.DrainDelay > 0 {
			t := time.NewTimer(opts.DrainDelay)
			select {
			case <-t.C:
			case err := <-errc:
				t.Stop()
				shutdownDebug()
				return err
			}
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			shutdownDebug()
			return err
		}
		shutdownDebug()
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
