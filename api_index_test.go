package wmxml

// Public-surface tests for the PR-2 index layer: parse options, the
// document index, indexed detection, and pipeline verification.

import (
	"context"
	"strings"
	"testing"
)

func TestParseXMLWithOptions(t *testing.T) {
	src := "<db>\n  <!-- a comment -->\n  <book><title>T</title></book>\n</db>"
	plain, err := ParseXML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plain.Root().Children); got != 1 {
		t.Fatalf("default parse kept %d children, want 1", got)
	}
	kept, err := ParseXMLWithOptions(strings.NewReader(src), ParseOptions{KeepComments: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(kept.Root().Children); got != 2 {
		t.Fatalf("KeepComments parse kept %d children, want 2", got)
	}
}

func TestDetectIndexedPublicAPI(t *testing.T) {
	ds := PublicationsDataset(150, 77)
	sys, err := New(Options{
		Key: "api-key", Mark: "api-mark", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewDocumentIndex(doc)
	det, err := sys.DetectIndexed(doc, receipt.Records, nil, ix)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Detect(doc, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *det != *plain {
		t.Fatalf("indexed %+v != plain %+v", det, plain)
	}
	blind, err := sys.DetectBlindIndexed(doc, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !blind.Detected {
		t.Fatalf("blind indexed: %+v", blind)
	}
}

func TestPipelineVerifyPublicAPI(t *testing.T) {
	ds := PublicationsDataset(100, 41)
	sys, err := New(Options{
		Key: "pl-key", Mark: "pl-mark", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPipeline(sys, PipelineOptions{Workers: 2, Verify: true})
	outs, err := pl.EmbedBatch(context.Background(), []*Document{ds.Doc.Clone(), ds.Doc.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.Err != nil || o.VerifyErr != nil {
			t.Fatalf("outcome %s: err=%v verifyErr=%v", o.ID, o.Err, o.VerifyErr)
		}
		if o.Verify == nil || !o.Verify.Detected || o.Verify.MatchFraction != 1.0 {
			t.Fatalf("outcome %s: verify = %+v", o.ID, o.Verify)
		}
	}
}

func TestDisableIndexEquivalentPublicAPI(t *testing.T) {
	ds := PublicationsDataset(120, 55)
	build := func(disable bool) (*Detection, error) {
		sys, err := New(Options{
			Key: "di-key", Mark: "di-mark", Schema: ds.Schema,
			Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 4, DisableIndex: disable,
		})
		if err != nil {
			return nil, err
		}
		doc := ds.Doc.Clone()
		receipt, err := sys.Embed(doc)
		if err != nil {
			return nil, err
		}
		return sys.Detect(doc, receipt.Records, nil)
	}
	fast, err := build(false)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	if *fast != *slow {
		t.Fatalf("indexed %+v != unindexed %+v", fast, slow)
	}
}
