package wmxml

import (
	"testing"
)

// TestMultiOwnerInterference documents what happens when two parties
// watermark the same document with different keys: their carrier sets
// overlap by roughly 1/gamma², and the later embedding overwrites the
// overlap. Both marks remain detectable as long as gamma leaves the
// overlap small — the standard behaviour for keyed LSB schemes, worth
// pinning down in a test because multi-marking is how re-distribution
// chains get traced.
func TestMultiOwnerInterference(t *testing.T) {
	ds := PublicationsDataset(500, 301)
	newSys := func(key, markSeed string) *System {
		sys, err := New(Options{
			Key: key, MarkBits: RandomMark(markSeed, 48),
			Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	owner := newSys("owner-key", "owner-mark")
	reseller := newSys("reseller-key", "reseller-mark")

	doc := ds.Doc.Clone()
	ownerReceipt, err := owner.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	resellerReceipt, err := reseller.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}

	// The second mark is pristine.
	rdet, err := reseller.Detect(doc, resellerReceipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rdet.Detected || rdet.MatchFraction != 1.0 {
		t.Errorf("reseller mark damaged: %+v", rdet)
	}
	// The first mark survives with small damage (the carrier overlap).
	odet, err := owner.Detect(doc, ownerReceipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !odet.Detected {
		t.Errorf("owner mark lost after second embedding: %+v", odet)
	}
	if odet.MatchFraction < 0.9 {
		t.Errorf("owner mark degraded more than the overlap predicts: %.3f", odet.MatchFraction)
	}
	// And the confidence statistics say both detections are implausible
	// by chance.
	if odet.Sigma < 5 || rdet.Sigma < 5 {
		t.Errorf("sigma too low: owner %.1f reseller %.1f", odet.Sigma, rdet.Sigma)
	}
	if odet.FalsePositiveRate > 1e-4 {
		t.Errorf("owner FP rate = %v", odet.FalsePositiveRate)
	}
}

// TestDetectionConfidenceFields pins the new confidence statistics.
func TestDetectionConfidenceFields(t *testing.T) {
	ds := JobsDataset(300, 302)
	sys, err := New(Options{
		Key: "conf-key", MarkBits: RandomMark("conf-mark", 48),
		Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(doc, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if det.Sigma <= 0 {
		t.Errorf("sigma = %f on a perfect detection", det.Sigma)
	}
	if det.FalsePositiveRate <= 0 || det.FalsePositiveRate > 1e-6 {
		t.Errorf("FP rate = %v on a full 48-bit match", det.FalsePositiveRate)
	}
	// An unmarked document yields chance-level confidence.
	virgin, err := sys.DetectBlind(ds.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if virgin.FalsePositiveRate < 0.01 {
		t.Errorf("unmarked FP rate = %v, should be large (plausible by chance)", virgin.FalsePositiveRate)
	}
}
