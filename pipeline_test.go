package wmxml

// Tests for the public batch pipeline: slice batches, streaming
// sequences, summaries, and equivalence with per-document System calls.

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"testing"
)

func pipelineFixture(t *testing.T, docs int) ([]*Document, *System) {
	t.Helper()
	base := PublicationsDataset(120, 1)
	sys, err := New(Options{
		Key: "pub-pipe-key", Mark: "(C) PIPE", Gamma: 4,
		Schema: base.Schema, Catalog: base.Catalog, Targets: base.Targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Document, docs)
	for i := range out {
		out[i] = PublicationsDataset(120, int64(i+1)).Doc
	}
	return out, sys
}

func TestPipelineEmbedDetectBatch(t *testing.T) {
	docs, sys := pipelineFixture(t, 8)
	pl := NewPipeline(sys, PipelineOptions{Workers: 4})

	outs, err := pl.EmbedBatch(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]DetectInput, len(docs))
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("doc %d: %v", i, o.Err)
		}
		if o.Receipt.Carriers == 0 {
			t.Fatalf("doc %d: no carriers", i)
		}
		inputs[i] = DetectInput{Doc: docs[i], Records: o.Receipt.Records}
	}
	sum := SummarizeEmbedBatch(outs)
	if sum.Succeeded != len(docs) || sum.Failed != 0 {
		t.Fatalf("embed summary = %+v", sum)
	}

	dets, err := pl.DetectBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		if d.Err != nil || !d.Detection.Detected || d.Detection.MatchFraction != 1.0 {
			t.Errorf("doc %s: err=%v det=%+v", d.ID, d.Err, d.Detection)
		}
	}
	dsum := SummarizeDetectBatch(dets)
	if dsum.Detected != len(docs) || dsum.MeanMatch != 1.0 {
		t.Errorf("detect summary = %+v", dsum)
	}

	// Blind batch detection over the same marked corpus.
	blind, err := pl.DetectBatchBlind(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if s := SummarizeDetectBatch(blind); s.Detected != len(docs) {
		t.Errorf("blind summary = %+v", s)
	}
}

// TestPipelineMatchesSystem: a pooled batch must give each document the
// identical detection a lone System.Detect gives.
func TestPipelineMatchesSystem(t *testing.T) {
	docs, sys := pipelineFixture(t, 4)
	pl := NewPipeline(sys, PipelineOptions{Workers: 3})
	outs, err := pl.EmbedBatch(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range docs {
		want, err := sys.Detect(doc, outs[i].Receipt.Records, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.DetectBatch(context.Background(),
			[]DetectInput{{Doc: doc, Records: outs[i].Receipt.Records}})
		if err != nil {
			t.Fatal(err)
		}
		if *got[0].Detection != *want {
			t.Errorf("doc %d: batch detection %+v != system detection %+v", i, *got[0].Detection, *want)
		}
	}
}

func TestPipelineSeqStreaming(t *testing.T) {
	docs, sys := pipelineFixture(t, 6)
	pl := NewPipeline(sys, PipelineOptions{Workers: 3})

	src := func(yield func(string, *Document) bool) {
		for i, d := range docs {
			if !yield(fmt.Sprintf("stream-%d", i), d) {
				return
			}
		}
	}
	records := make(map[string][]QueryRecord)
	for o := range pl.EmbedSeq(context.Background(), iter.Seq2[string, *Document](src)) {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.ID, o.Err)
		}
		records[o.ID] = o.Receipt.Records
	}
	if len(records) != len(docs) {
		t.Fatalf("stream embedded %d docs, want %d", len(records), len(docs))
	}

	dsrc := func(yield func(DetectInput) bool) {
		for i, d := range docs {
			id := fmt.Sprintf("stream-%d", i)
			if !yield(DetectInput{ID: id, Doc: d, Records: records[id]}) {
				return
			}
		}
	}
	n, detected := 0, 0
	for o := range pl.DetectSeq(context.Background(), iter.Seq[DetectInput](dsrc)) {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.ID, o.Err)
		}
		n++
		if o.Detection.Detected {
			detected++
		}
	}
	if n != len(docs) || detected != len(docs) {
		t.Fatalf("stream detected %d/%d, want %d/%d", detected, n, len(docs), len(docs))
	}

	// Early break from the consumer must terminate cleanly.
	broke := 0
	for range pl.EmbedSeq(context.Background(), iter.Seq2[string, *Document](src)) {
		broke++
		break
	}
	if broke != 1 {
		t.Fatalf("broke after %d outcomes", broke)
	}
}

func TestPipelineCancellation(t *testing.T) {
	docs, sys := pipelineFixture(t, 5)
	pl := NewPipeline(sys, PipelineOptions{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err := pl.EmbedBatch(ctx, docs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sum := SummarizeEmbedBatch(outs)
	if sum.Skipped != len(docs) {
		t.Errorf("summary = %+v, want all skipped", sum)
	}
	for _, o := range outs {
		if !errors.Is(o.Err, ErrBatchSkipped) {
			t.Errorf("%s: err = %v, want ErrBatchSkipped", o.ID, o.Err)
		}
	}
}

// TestSystemConcurrencyOption: the public Concurrency knob must not
// change results (deep equivalence is pinned in internal/core; this
// guards the wiring).
func TestSystemConcurrencyOption(t *testing.T) {
	ds := PublicationsDataset(150, 9)
	mk := func(conc int) (*System, *Document) {
		t.Helper()
		sys, err := New(Options{
			Key: "conc-key", Mark: "(C) CONC", Gamma: 4, Concurrency: conc,
			Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys, ds.Doc.Clone()
	}
	seqSys, seqDoc := mk(1)
	seqRec, err := seqSys.Embed(seqDoc)
	if err != nil {
		t.Fatal(err)
	}
	parSys, parDoc := mk(8)
	parRec, err := parSys.Embed(parDoc)
	if err != nil {
		t.Fatal(err)
	}
	if SerializeXMLString(seqDoc) != SerializeXMLString(parDoc) {
		t.Error("concurrent embed produced a different document")
	}
	if len(seqRec.Records) != len(parRec.Records) {
		t.Fatalf("record counts differ: %d != %d", len(seqRec.Records), len(parRec.Records))
	}
	seqDet, err := seqSys.Detect(seqDoc, seqRec.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	parDet, err := parSys.Detect(parDoc, parRec.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *seqDet != *parDet {
		t.Errorf("detections differ: %+v != %+v", *seqDet, *parDet)
	}
}
